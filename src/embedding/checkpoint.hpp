#pragma once
// Binary checkpointing for trained models. The IoT deployment story of
// the paper (Sec. 1) implies devices that power-cycle: the embedding
// state (beta, and P for the persistent-P variant) must survive
// restarts so sequential training can resume where it left off. Format:
//
//   magic "SEQGE1\n" | dims u64 | rows u64 | payload-kind u8
//   beta (rows x dims f32) [ | P (dims x dims f32) ]
//
// Checkpoints are portable across the CPU models; the FPGA accelerator
// loads/stores through its float conversion (quantizing to Q8.24 on
// load).

#include <iosfwd>
#include <string>

#include "linalg/matrix.hpp"

namespace seqge {

class OselmSkipGram;
class OselmSkipGramDataflow;
class SkipGramSGD;

namespace fpga {
class Accelerator;
}

struct CheckpointHeader {
  std::size_t dims = 0;
  std::size_t rows = 0;
  bool has_covariance = false;
};

// --- generic matrix payloads -------------------------------------------
void write_checkpoint(std::ostream& os, const MatrixF& beta,
                      const MatrixF* covariance);
[[nodiscard]] CheckpointHeader read_checkpoint_header(std::istream& is);
/// Reads the payload that follows a read_checkpoint_header call.
void read_checkpoint_payload(std::istream& is, const CheckpointHeader& h,
                             MatrixF& beta, MatrixF* covariance);

// --- model-level convenience --------------------------------------------
void save_model(std::ostream& os, const OselmSkipGram& model);
void save_model(std::ostream& os, const OselmSkipGramDataflow& model);
void save_model(std::ostream& os, const SkipGramSGD& model);
/// FPGA accelerator: beta only, dequantized from Q8.24 (P lives on the
/// PL and is re-initialized per walk, so it is not persisted).
void save_model(std::ostream& os, const fpga::Accelerator& model);

/// OS-ELM loads. By default the checkpoint must carry the covariance P;
/// pass require_covariance = false to accept a beta-only checkpoint —
/// e.g. one written by the FPGA backend — leaving the model's current P
/// untouched (with the default reset-P-per-walk flow, P is
/// re-initialized before the next walk anyway).
void load_model(std::istream& is, OselmSkipGram& model,
                bool require_covariance = true);
void load_model(std::istream& is, OselmSkipGramDataflow& model,
                bool require_covariance = true);
/// FPGA accelerator: beta re-quantized to Q8.24 on load; a covariance
/// block, if present, is read and discarded.
void load_model(std::istream& is, fpga::Accelerator& model);

void save_model(const std::string& path, const OselmSkipGram& model);
void load_model(const std::string& path, OselmSkipGram& model);

}  // namespace seqge
