#pragma once
// Int8 scalar-quantized row store for serving-scale scans — the CPU
// analogue of the paper's narrow-datapath trade (the FPGA feeds its
// skip-gram pipeline Q8.24 fixed point; here the read path drops to
// int8 with per-row/per-block scales).
//
// Codes are symmetric: code = round(x / scale) clamped to [-127, 127],
// scale = max|x| / 127 over the row (or over each `block`-dim block,
// giving a block-floating-point layout; optionally rounded up to a
// power of two so the scale is a pure exponent à la BFP). A row of d
// floats becomes d bytes + one float scale per block — ~4x smaller, and
// the scan kernel is the integer-SIMD dot of linalg/simd.hpp, which is
// bit-exact across ISAs (the approximate scores are therefore fully
// deterministic everywhere, unlike float SIMD).
//
// The store scores *approximately*: engines use it as a candidate
// generator and re-rank a small float candidate set (k × rerank) to
// hold recall@10 ≥ 0.95 vs. the exact float scan — see
// IndexConfig::quant in serve/query_engine.hpp.
//
// Immutable after construction on the query path; requantize_row
// exists only for engine-construction-time refresh (the sharded
// engine's incremental rebuild re-quantizes just the changed rows
// before the new engine is published).

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/simd.hpp"

namespace seqge::serve {

/// Scan arithmetic for the serving engines: full-precision float, int8
/// scalar quantization with float re-rank, or block floating point
/// (int8 mantissas + one int16 shared exponent per block — the closest
/// CPU analogue of the FPGA's shared-exponent narrow datapath).
enum class QuantMode { kNone, kInt8, kBfp };

struct QuantConfig {
  /// Dims per scale group. 0 = one scale per row; otherwise each run of
  /// `block` dims shares a scale (block floating point).
  std::size_t block = 0;
  /// Round scales up to the next power of two — the scale degenerates
  /// to a shared exponent (true BFP) but is still stored as a float.
  /// Costs ≤ 1 bit of precision.
  bool pow2_scales = false;
  /// Store int16 exponents instead of float scales: each block is
  /// code * 2^exp. Halves the per-block metadata vs pow2_scales and
  /// turns descaling into exponent adds (std::ldexp). Same ≤ 1 bit
  /// precision cost as pow2_scales; recall@10 ≥ 0.95 is gated in
  /// bench_serving. Implies pow2 scales; `pow2_scales` is ignored.
  bool bfp = false;
};

class QuantizedRowStore {
 public:
  /// A query quantized with the same block layout as the store rows.
  struct QuantizedQuery {
    std::vector<std::int8_t> codes;   ///< dims entries
    std::vector<float> scales;        ///< one per block (float modes)
    std::vector<std::int16_t> exps;   ///< one per block (bfp mode)
  };

  /// Exponent sentinel for an all-zero block in bfp mode (its codes
  /// are all zero too, so scans never multiply by it).
  static constexpr std::int16_t kZeroExp =
      std::numeric_limits<std::int16_t>::min();

  QuantizedRowStore() = default;

  /// Quantizes every row of `rows` (engines pass their L2-normalized
  /// matrix, so row values are in [-1, 1]).
  QuantizedRowStore(const MatrixF& rows, const QuantConfig& cfg);

  [[nodiscard]] bool empty() const noexcept { return rows_ == 0; }
  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t dims() const noexcept { return dims_; }
  [[nodiscard]] const QuantConfig& config() const noexcept { return cfg_; }
  /// Heap bytes held by codes + scales (the ~4x claim is testable).
  [[nodiscard]] std::size_t bytes() const noexcept {
    return codes_.size() * sizeof(std::int8_t) +
           scales_.size() * sizeof(float) +
           exps_.size() * sizeof(std::int16_t);
  }

  /// Re-quantize one row in place (engine-construction-time refresh
  /// only — not safe concurrently with scans).
  void requantize_row(std::size_t r, std::span<const float> row);

  /// Quantize a query vector with layout `cfg` (must match the store's
  /// config for score()/scan() to be meaningful).
  [[nodiscard]] static QuantizedQuery quantize_query(
      std::span<const float> q, const QuantConfig& cfg);

  /// Approximate dot(row r, original query): per-block integer dot,
  /// scaled by row-block and query-block scales, summed in float.
  [[nodiscard]] float score(std::size_t r, const QuantizedQuery& q) const;

  /// Fused approximate scan over rows [begin, end): offer(row,
  /// approx_score) in row order (determinism contract of the engines'
  /// candidate generation). IVF engines use sub-ranges — a probed cell
  /// is one contiguous stripe of the code array.
  template <typename Offer>
  void scan_range(std::size_t begin, std::size_t end,
                  const QuantizedQuery& q, Offer&& offer) const {
    if (blocks_ == 1 && cfg_.bfp) {
      // BFP fast path: descale = one exponent add per row. An all-zero
      // row (sentinel exponent) necessarily scores acc == 0; ldexp of
      // zero is zero for any exponent, so no branch is needed.
      const int qe = q.exps[0];
      simd::dot_i8_topk_scan(
          codes_.data() + begin * dims_, end - begin, dims_,
          q.codes.data(), [&](std::size_t r, std::int32_t acc) {
            offer(begin + r,
                  static_cast<float>(
                      std::ldexp(static_cast<double>(acc),
                                 exps_[begin + r] + qe)));
          });
    } else if (blocks_ == 1) {
      const float qs = q.scales[0];
      simd::dot_i8_topk_scan(
          codes_.data() + begin * dims_, end - begin, dims_,
          q.codes.data(), [&](std::size_t r, std::int32_t acc) {
            offer(begin + r,
                  static_cast<float>(acc) * scales_[begin + r] * qs);
          });
    } else {
      for (std::size_t r = begin; r < end; ++r) offer(r, score(r, q));
    }
  }

  /// Full-store scan.
  template <typename Offer>
  void scan(const QuantizedQuery& q, Offer&& offer) const {
    scan_range(0, rows_, q, offer);
  }

  /// Reconstruct row r (code * scale per element). Round-trip error is
  /// bounded by scale/2 per element — tests/test_simd_quant.cpp gates
  /// it.
  void dequantize_row(std::size_t r, std::span<float> out) const;

 private:
  QuantConfig cfg_{};
  std::size_t rows_ = 0;
  std::size_t dims_ = 0;
  std::size_t blocks_ = 0;      ///< scale groups per row
  std::size_t block_dims_ = 0;  ///< dims per group (== dims_ if 1 group)
  std::vector<std::int8_t> codes_;  ///< rows_ x dims_, row-major
  std::vector<float> scales_;       ///< rows_ x blocks_ (float modes)
  std::vector<std::int16_t> exps_;  ///< rows_ x blocks_ (bfp mode)
};

}  // namespace seqge::serve
