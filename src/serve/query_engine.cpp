#include "serve/query_engine.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "linalg/kernels.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace seqge::serve {

std::vector<Neighbor> TopKAccumulator::take() {
  std::sort(heap_.begin(), heap_.end(), [](const Neighbor& a,
                                           const Neighbor& b) {
    return a.score != b.score ? a.score > b.score : a.node < b.node;
  });
  return std::move(heap_);
}

void l2_normalize(std::span<float> v) {
  const auto n = static_cast<float>(l2_norm<float>(v));
  if (n > 0.0f) scale(1.0f / n, v);
}

void l2_normalize_rows(MatrixF& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) l2_normalize(m.row(r));
}

// --- IvfIndex ---------------------------------------------------------------

void IvfIndex::build(const MatrixF& normalized, const IndexConfig& cfg) {
  const std::size_t n = normalized.rows();
  const std::size_t dims = normalized.cols();
  std::size_t nl = cfg.nlist != 0
                       ? cfg.nlist
                       : static_cast<std::size_t>(
                             std::sqrt(static_cast<double>(n)));
  nl = std::clamp<std::size_t>(nl, 1, n);

  Rng rng(cfg.seed);

  // Train the quantizer on a sample (assignment below always uses every
  // row); spherical k-means — centroids re-normalized each iteration so
  // "nearest centroid" is a plain dot product.
  std::size_t sample = cfg.kmeans_sample != 0 ? cfg.kmeans_sample : 64 * nl;
  sample = std::min(sample, n);
  std::vector<std::uint32_t> train_rows(n);
  std::iota(train_rows.begin(), train_rows.end(), 0u);
  for (std::size_t i = 0; i < sample; ++i) {
    std::swap(train_rows[i], train_rows[i + rng.bounded(n - i)]);
  }
  train_rows.resize(sample);

  centroids = MatrixF(nl, dims);
  for (std::size_t c = 0; c < nl; ++c) {
    copy<float>(normalized.row(train_rows[c % sample]), centroids.row(c));
  }

  std::vector<std::uint32_t> assign(sample, 0);
  for (std::size_t iter = 0; iter < cfg.kmeans_iters; ++iter) {
    for (std::size_t i = 0; i < sample; ++i) {
      assign[i] =
          static_cast<std::uint32_t>(nearest(normalized.row(train_rows[i])));
    }
    centroids.fill(0.0f);
    std::vector<std::uint32_t> counts(nl, 0);
    for (std::size_t i = 0; i < sample; ++i) {
      axpy<float>(1.0f, normalized.row(train_rows[i]),
                  centroids.row(assign[i]));
      ++counts[assign[i]];
    }
    for (std::size_t c = 0; c < nl; ++c) {
      if (counts[c] == 0) {
        // Empty cell: reseed from a random training row.
        copy<float>(normalized.row(train_rows[rng.bounded(sample)]),
                    centroids.row(c));
      }
    }
    l2_normalize_rows(centroids);
  }

  // Full assignment pass over every row -> CSR member lists, recording
  // each row's assignment-time affinity as the drift baseline.
  cell.resize(n);
  cell_dot.resize(n);
#pragma omp parallel for if (n > 4096) schedule(static)
  for (std::size_t r = 0; r < n; ++r) {
    float best_dot = -2.0f;
    cell[r] = static_cast<std::uint32_t>(nearest(normalized.row(r),
                                                 best_dot));
    cell_dot[r] = best_dot;
  }
  rebuild_lists();
}

std::size_t IvfIndex::nearest(std::span<const float> row) const {
  float best_dot = -2.0f;
  return nearest(row, best_dot);
}

std::size_t IvfIndex::nearest(std::span<const float> row,
                              float& best_dot) const {
  std::size_t best = 0;
  best_dot = -2.0f;
  for (std::size_t c = 0; c < centroids.rows(); ++c) {
    const float d = dot<float>(centroids.row(c), row);
    if (d > best_dot) {
      best_dot = d;
      best = c;
    }
  }
  return best;
}

void IvfIndex::rebuild_lists() {
  const std::size_t n = cell.size();
  const std::size_t nl = nlist();
  list_off.assign(nl + 1, 0);
  for (std::size_t r = 0; r < n; ++r) ++list_off[cell[r] + 1];
  for (std::size_t c = 0; c < nl; ++c) list_off[c + 1] += list_off[c];
  list_nodes.resize(n);
  std::vector<std::uint32_t> cursor(list_off.begin(), list_off.end() - 1);
  for (std::size_t r = 0; r < n; ++r) {
    list_nodes[cursor[cell[r]]++] = static_cast<std::uint32_t>(r);
  }
}

// --- QueryEngine ------------------------------------------------------------

QueryEngine::QueryEngine(std::shared_ptr<const Snapshot> snapshot,
                         IndexConfig cfg)
    : snap_(std::move(snapshot)), cfg_(cfg) {
  if (snap_ == nullptr) {
    throw std::invalid_argument("QueryEngine: null snapshot");
  }
  if (snap_->embedding.empty()) {
    throw std::invalid_argument("QueryEngine: empty snapshot embedding");
  }
  normalized_ = snap_->embedding;
  l2_normalize_rows(normalized_);
  if (cfg_.kind == IndexConfig::Kind::kIvf) build_ivf();
  if (cfg_.quant != QuantMode::kNone) {
    // IVF quantizes the packed (list-order) rows so a probed cell scans
    // one contiguous code stripe; brute force quantizes node order.
    const MatrixF& source =
        cfg_.kind == IndexConfig::Kind::kIvf ? packed_rows_ : normalized_;
    quant_ = QuantizedRowStore(source,
                               {cfg_.quant_block, cfg_.quant_pow2,
                                cfg_.quant == QuantMode::kBfp});
  }
}

void QueryEngine::build_ivf() {
  ivf_.build(normalized_, cfg_);
  // Re-pack rows in list order: a probed cell is then one sequential
  // stripe instead of a gather over the whole matrix.
  const std::size_t n = normalized_.rows();
  packed_rows_ = MatrixF(n, normalized_.cols());
  for (std::size_t i = 0; i < n; ++i) {
    copy<float>(normalized_.row(ivf_.list_nodes[i]), packed_rows_.row(i));
  }
}

std::vector<Neighbor> QueryEngine::scan_topk(
    std::span<const float> query, std::size_t k, Similarity sim,
    NodeId exclude, std::span<const std::uint32_t> candidates) const {
  const MatrixF& rows =
      sim == Similarity::kCosine ? normalized_ : snap_->embedding;
  TopKAccumulator top(k);
  if (candidates.empty()) {
    for (std::size_t r = 0; r < rows.rows(); ++r) {
      if (r == exclude || snap_->tombstoned(r)) continue;
      top.offer(static_cast<NodeId>(r), dot<float>(rows.row(r), query));
    }
  } else {
    for (std::uint32_t r : candidates) {
      if (r == exclude || snap_->tombstoned(r)) continue;
      top.offer(r, dot<float>(rows.row(r), query));
    }
  }
  return top.take();
}

namespace {

/// Hot-path counters: one relaxed add each, no clocks or spans — the
/// scan path's obs overhead is gated at <= 2% in bench_serving.
struct QueryMetrics {
  obs::Counter* scans;
  obs::Counter* ivf_probes;
  obs::Counter* quant_candidates;
  obs::Counter* quant_corrections;
};

QueryMetrics& query_metrics() {
  static QueryMetrics m{
      obs::Registry::global().counter("seqge_query_scans_total", {},
                                      "Top-k scans executed"),
      obs::Registry::global().counter("seqge_query_ivf_probes_total", {},
                                      "IVF cells probed"),
      obs::Registry::global().counter(
          "seqge_query_quant_candidates_total", {},
          "int8 candidates float-re-ranked"),
      obs::Registry::global().counter(
          "seqge_query_quant_corrections_total", {},
          "Final top-k entries the int8 order missed (re-rank saves)"),
  };
  return m;
}

}  // namespace

std::vector<Neighbor> QueryEngine::topk(std::span<const float> query,
                                        std::size_t k, Similarity sim,
                                        NodeId exclude,
                                        std::size_t nprobe_override) const {
  if (query.size() != snap_->dims()) {
    throw std::invalid_argument("QueryEngine::topk: query dims mismatch");
  }
  query_metrics().scans->add();
  std::vector<float> unit;
  std::span<const float> q = query;
  if (sim == Similarity::kCosine) {
    unit.assign(query.begin(), query.end());
    l2_normalize(unit);
    q = unit;
  }

  // Quantized scan is cosine-only; dot falls back to the float path.
  if (cfg_.quant != QuantMode::kNone && sim == Similarity::kCosine &&
      !quant_.empty()) {
    return topk_quant(q, k, exclude, nprobe_override);
  }

  // IVF search is cosine-ordered; dot falls back to the exact scan.
  if (cfg_.kind == IndexConfig::Kind::kIvf && sim == Similarity::kCosine &&
      !ivf_.empty()) {
    const std::size_t nlist = ivf_.nlist();
    const std::size_t nprobe = std::min(
        nlist, nprobe_override != 0 ? nprobe_override : cfg_.nprobe);
    if (nprobe < nlist) {
      query_metrics().ivf_probes->add(nprobe);
      // Rank cells by centroid similarity, then scan the nprobe best —
      // each a contiguous stripe of packed_rows_.
      std::vector<Neighbor> cells;
      {
        TopKAccumulator cell_top(nprobe);
        for (std::size_t c = 0; c < nlist; ++c) {
          cell_top.offer(static_cast<NodeId>(c),
                         dot<float>(ivf_.centroids.row(c), q));
        }
        cells = cell_top.take();
      }
      TopKAccumulator top(k);
      for (const Neighbor& cell : cells) {
        for (std::uint32_t i = ivf_.list_off[cell.node];
             i < ivf_.list_off[cell.node + 1]; ++i) {
          const std::uint32_t r = ivf_.list_nodes[i];
          if (r == exclude || snap_->tombstoned(r)) continue;
          top.offer(r, dot<float>(packed_rows_.row(i), q));
        }
      }
      return top.take();
    }
  }
  return scan_topk(q, k, sim, exclude, {});
}

std::vector<Neighbor> QueryEngine::topk_quant(
    std::span<const float> unit_q, std::size_t k, NodeId exclude,
    std::size_t nprobe_override) const {
  const auto qq = QuantizedRowStore::quantize_query(unit_q, quant_.config());
  const std::size_t rerank = std::max<std::size_t>(cfg_.quant_rerank, 1);
  const std::size_t cand_k = k * rerank;

  // Stage 1: int8 approximate scan -> cand_k candidates. With IVF the
  // store indexes packed (list-order) rows, so candidates carry packed
  // positions; brute force candidates carry node ids directly.
  const bool use_ivf = cfg_.kind == IndexConfig::Kind::kIvf && !ivf_.empty();
  TopKAccumulator approx(cand_k);
  if (use_ivf) {
    const std::size_t nlist = ivf_.nlist();
    const std::size_t nprobe = std::min(
        nlist, nprobe_override != 0 ? nprobe_override : cfg_.nprobe);
    query_metrics().ivf_probes->add(nprobe);
    std::vector<Neighbor> cells;
    {
      TopKAccumulator cell_top(nprobe);
      for (std::size_t c = 0; c < nlist; ++c) {
        cell_top.offer(static_cast<NodeId>(c),
                       dot<float>(ivf_.centroids.row(c), unit_q));
      }
      cells = cell_top.take();
    }
    for (const Neighbor& cell : cells) {
      quant_.scan_range(
          ivf_.list_off[cell.node], ivf_.list_off[cell.node + 1], qq,
          [&](std::size_t i, float s) {
            const std::uint32_t r = ivf_.list_nodes[i];
            if (r == exclude || snap_->tombstoned(r)) return;
            approx.offer(static_cast<NodeId>(i), s);
          });
    }
  } else {
    quant_.scan(qq, [&](std::size_t r, float s) {
      if (r == exclude || snap_->tombstoned(r)) return;
      approx.offer(static_cast<NodeId>(r), s);
    });
  }

  // Stage 2: float re-rank of the candidates. Map packed positions back
  // to node ids and offer in ascending node order so score ties resolve
  // exactly like the float scan's.
  struct Cand {
    NodeId node;
    std::uint32_t packed;
  };
  std::vector<Cand> cands;
  const auto approx_hits = approx.take();
  cands.reserve(approx_hits.size());
  for (const Neighbor& h : approx_hits) {
    const auto p = static_cast<std::uint32_t>(h.node);
    cands.push_back({use_ivf ? ivf_.list_nodes[p] : h.node, p});
  }
  std::sort(cands.begin(), cands.end(),
            [](const Cand& a, const Cand& b) { return a.node < b.node; });
  TopKAccumulator top(k);
  for (const Cand& c : cands) {
    const auto row =
        use_ivf ? packed_rows_.row(c.packed) : normalized_.row(c.packed);
    top.offer(c.node, dot<float>(row, unit_q));
  }
  std::vector<Neighbor> final_hits = top.take();
  if (obs::enabled()) {
    query_metrics().quant_candidates->add(cands.size());
    // Re-rank hit rate: how many of the final top-k the int8 order
    // alone would have missed (i.e. not already in its first k).
    std::uint64_t corrections = 0;
    const std::size_t head = std::min(k, approx_hits.size());
    for (const Neighbor& f : final_hits) {
      bool in_head = false;
      for (std::size_t i = 0; i < head; ++i) {
        const auto p = static_cast<std::uint32_t>(approx_hits[i].node);
        const NodeId node = use_ivf ? ivf_.list_nodes[p] : approx_hits[i].node;
        if (node == f.node) {
          in_head = true;
          break;
        }
      }
      if (!in_head) ++corrections;
    }
    query_metrics().quant_corrections->add(corrections);
  }
  return final_hits;
}

std::vector<Neighbor> QueryEngine::topk(NodeId u, std::size_t k,
                                        Similarity sim,
                                        std::size_t nprobe_override) const {
  if (u >= snap_->num_nodes()) {
    throw std::invalid_argument("QueryEngine::topk: node out of range");
  }
  // Route through the raw row: the span overload re-normalizes for
  // cosine, which is a no-op for already-unit rows but keeps one path.
  return topk(snap_->embedding.row(u), k, sim, u, nprobe_override);
}

std::vector<std::vector<Neighbor>> QueryEngine::topk_batch(
    std::span<const NodeId> nodes, std::size_t k, Similarity sim) const {
  std::vector<std::vector<Neighbor>> out(nodes.size());
  // An exception crossing an OpenMP region boundary terminates the
  // process; capture the first one and rethrow on the calling thread.
  std::exception_ptr error = nullptr;
#pragma omp parallel for if (nodes.size() > 8) schedule(dynamic)
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    try {
      out[i] = topk(nodes[i], k, sim);
    } catch (...) {
#pragma omp critical(seqge_topk_batch_error)
      if (error == nullptr) error = std::current_exception();
    }
  }
  if (error != nullptr) std::rethrow_exception(error);
  return out;
}

double recall_at_k(std::span<const Neighbor> exact,
                   std::span<const Neighbor> approx) {
  if (exact.empty()) return 1.0;
  std::size_t hits = 0;
  for (const Neighbor& e : exact) {
    for (const Neighbor& a : approx) {
      if (a.node == e.node) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(exact.size());
}

}  // namespace seqge::serve
