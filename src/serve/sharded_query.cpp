#include "serve/sharded_query.hpp"

#include <algorithm>
#include <stdexcept>

#include "linalg/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace seqge::serve {

namespace {

/// Per-shard scan latency across the fan-out (observed from pool
/// threads; the histogram's sharded stripes keep that contention-free).
obs::Histogram* shard_scan_us() {
  static obs::Histogram* const h = obs::Registry::global().histogram(
      "seqge_query_shard_scan_us", obs::default_latency_buckets_us(), {},
      "One shard's scan within a fan-out (microseconds)");
  return h;
}

}  // namespace

// One shard's query-side state: the shard snapshot (kept alive for raw
// row access), its rows L2-normalized into a contiguous matrix, and —
// when the config asks for IVF — a per-shard quantizer. Immutable once
// constructed; "incremental" construction copies the previous state and
// patches only the changed rows before freezing.
class ShardedQueryEngine::Shard {
 public:
  /// Fresh build: normalize every row, train the quantizer from
  /// scratch.
  Shard(std::shared_ptr<const ShardSnapshot> snap, const IndexConfig& cfg)
      : snap_(std::move(snap)),
        normalized_(snap_->num_rows(), snap_->dims) {
    for (std::size_t r = 0; r < snap_->num_rows(); ++r) {
      auto src = snap_->row(r);
      std::copy(src.begin(), src.end(), normalized_.row(r).begin());
    }
    l2_normalize_rows(normalized_);
    if (cfg.kind == IndexConfig::Kind::kIvf && snap_->num_rows() > 0) {
      ivf_.build(normalized_, cfg);
    }
    if (cfg.quant != QuantMode::kNone && snap_->num_rows() > 0) {
      // Shards quantize local node order (no packed re-order: shard IVF
      // lists index normalized_ directly).
      quant_ = QuantizedRowStore(normalized_,
                                 {cfg.quant_block, cfg.quant_pow2,
                                  cfg.quant == QuantMode::kBfp});
    }
  }

  /// Incremental refresh: start from `prev`'s state and re-normalize
  /// only the rows changed since the shared base. The quantizer's
  /// centroids are kept as-is (no re-clustering); a changed row re-runs
  /// the nearest-centroid scan only once its affinity to its assigned
  /// centroid has decayed more than `threshold` below the
  /// assignment-time baseline (IvfIndex::cell_dot) — measured against
  /// the baseline, not the previous refresh, so sub-threshold drift
  /// accumulates across refreshes instead of escaping re-assignment
  /// forever.
  Shard(const Shard& prev, std::shared_ptr<const ShardSnapshot> snap,
        float threshold, ShardedRefreshStats& stats)
      : snap_(std::move(snap)),
        normalized_(prev.normalized_),
        ivf_(prev.ivf_),
        quant_(prev.quant_) {
    std::vector<float> fresh(snap_->dims);
    bool lists_dirty = false;
    for (std::uint32_t r : snap_->changed_since_base) {
      auto src = snap_->row(r);
      fresh.assign(src.begin(), src.end());
      l2_normalize(fresh);
      auto dst = normalized_.row(r);
      std::copy(fresh.begin(), fresh.end(), dst.begin());
      if (!quant_.empty()) quant_.requantize_row(r, dst);
      ++stats.rows_updated;
      if (!ivf_.empty()) {
        const float affinity =
            dot<float>(ivf_.centroids.row(ivf_.cell[r]), dst);
        if (ivf_.cell_dot[r] - affinity > threshold) {
          float best_dot = -2.0f;
          const auto c =
              static_cast<std::uint32_t>(ivf_.nearest(dst, best_dot));
          ivf_.cell_dot[r] = best_dot;  // new assignment-time baseline
          if (c != ivf_.cell[r]) {
            ivf_.cell[r] = c;
            lists_dirty = true;
            ++stats.rows_reassigned;
          }
        }
      }
    }
    if (lists_dirty) ivf_.rebuild_lists();
  }

  [[nodiscard]] std::uint64_t version() const noexcept {
    return snap_->version;
  }
  [[nodiscard]] std::uint64_t base_version() const noexcept {
    return snap_->base_version;
  }
  [[nodiscard]] std::size_t num_rows() const noexcept {
    return snap_->num_rows();
  }
  [[nodiscard]] NodeId row_begin() const noexcept {
    return snap_->row_begin;
  }
  [[nodiscard]] std::span<const float> raw_row(std::size_t local) const {
    return snap_->row(local);
  }

  /// Exact scan of every row (local order == ascending global id),
  /// offering global node ids — the fan-out half of the exact path.
  void scan_exact(std::span<const float> q, Similarity sim,
                  NodeId exclude_global, TopKAccumulator& top) const {
    const NodeId begin = snap_->row_begin;
    if (sim == Similarity::kCosine) {
      for (std::size_t r = 0; r < normalized_.rows(); ++r) {
        const NodeId node = begin + static_cast<NodeId>(r);
        if (node == exclude_global || snap_->tombstoned(r)) continue;
        top.offer(node, dot<float>(normalized_.row(r), q));
      }
    } else {
      for (std::size_t r = 0; r < num_rows(); ++r) {
        const NodeId node = begin + static_cast<NodeId>(r);
        if (node == exclude_global || snap_->tombstoned(r)) continue;
        top.offer(node, dot<float>(snap_->row(r), q));
      }
    }
  }

  /// Probe the `nprobe` best cells of this shard's quantizer (cosine
  /// only). Falls back to the exact cosine scan when the shard has no
  /// index or nprobe covers every cell.
  void scan_ivf(std::span<const float> unit_q, std::size_t nprobe,
                NodeId exclude_global, TopKAccumulator& top) const {
    if (ivf_.empty() || nprobe >= ivf_.nlist()) {
      scan_exact(unit_q, Similarity::kCosine, exclude_global, top);
      return;
    }
    TopKAccumulator cell_top(nprobe);
    for (std::size_t c = 0; c < ivf_.nlist(); ++c) {
      cell_top.offer(static_cast<NodeId>(c),
                     dot<float>(ivf_.centroids.row(c), unit_q));
    }
    const NodeId begin = snap_->row_begin;
    for (const Neighbor& cell : cell_top.take()) {
      for (std::uint32_t i = ivf_.list_off[cell.node];
           i < ivf_.list_off[cell.node + 1]; ++i) {
        const std::uint32_t r = ivf_.list_nodes[i];
        const NodeId node = begin + static_cast<NodeId>(r);
        if (node == exclude_global || snap_->tombstoned(r)) continue;
        top.offer(node, dot<float>(normalized_.row(r), unit_q));
      }
    }
  }

  /// Normalized row for the float re-rank of the quantized path.
  [[nodiscard]] std::span<const float> normalized_row(
      std::size_t local) const {
    return normalized_.row(local);
  }

  /// Int8 approximate exact scan: every row scored against the
  /// quantized query, offering global node ids in local row order.
  void scan_exact_quant(const QuantizedRowStore::QuantizedQuery& qq,
                        NodeId exclude_global,
                        TopKAccumulator& top) const {
    const NodeId begin = snap_->row_begin;
    quant_.scan(qq, [&](std::size_t r, float s) {
      const NodeId node = begin + static_cast<NodeId>(r);
      if (node == exclude_global || snap_->tombstoned(r)) return;
      top.offer(node, s);
    });
  }

  /// Int8 approximate IVF scan: cells ranked with the float centroids,
  /// probed rows scored against the quantized query. Falls back to the
  /// quantized exact scan when the shard has no index.
  void scan_ivf_quant(std::span<const float> unit_q,
                      const QuantizedRowStore::QuantizedQuery& qq,
                      std::size_t nprobe, NodeId exclude_global,
                      TopKAccumulator& top) const {
    if (ivf_.empty() || nprobe >= ivf_.nlist()) {
      scan_exact_quant(qq, exclude_global, top);
      return;
    }
    TopKAccumulator cell_top(nprobe);
    for (std::size_t c = 0; c < ivf_.nlist(); ++c) {
      cell_top.offer(static_cast<NodeId>(c),
                     dot<float>(ivf_.centroids.row(c), unit_q));
    }
    const NodeId begin = snap_->row_begin;
    for (const Neighbor& cell : cell_top.take()) {
      for (std::uint32_t i = ivf_.list_off[cell.node];
           i < ivf_.list_off[cell.node + 1]; ++i) {
        const std::uint32_t r = ivf_.list_nodes[i];
        const NodeId node = begin + static_cast<NodeId>(r);
        if (node == exclude_global || snap_->tombstoned(r)) continue;
        top.offer(node, quant_.score(r, qq));
      }
    }
  }

 private:
  std::shared_ptr<const ShardSnapshot> snap_;
  MatrixF normalized_;
  IvfIndex ivf_;
  QuantizedRowStore quant_;  ///< empty unless IndexConfig::quant == kInt8
};

ShardedQueryEngine::ShardedQueryEngine(const ShardedEmbeddingStore& store,
                                       ShardedIndexConfig cfg,
                                       const ShardedQueryEngine* previous)
    : cfg_(cfg) {
  // Sample the version before the shard heads: heads read afterwards
  // are at least this fresh, so engine versions — and the response
  // versions the server reports — stay monotonic across rebuilds.
  version_ = store.version();
  const auto views = store.view();
  if (views.empty()) {
    throw std::invalid_argument("ShardedQueryEngine: store is empty");
  }
  // view() being non-empty establishes version() > 0, so the store's
  // layout is published and safe to copy.
  layout_ = store.layout();
  dims_ = views.front()->dims;

  shards_.reserve(views.size());
  for (std::size_t s = 0; s < views.size(); ++s) {
    const Shard* prev = previous != nullptr && s < previous->shards_.size()
                            ? previous->shards_[s].get()
                            : nullptr;
    const auto& snap = views[s];
    if (prev != nullptr && prev->version() == snap->version) {
      shards_.push_back(previous->shards_[s]);
      ++stats_.shards_reused;
    } else if (prev != nullptr && prev->num_rows() == snap->num_rows() &&
               snap->base_version <= prev->version()) {
      shards_.push_back(std::make_shared<const Shard>(
          *prev, snap, cfg_.reassign_threshold, stats_));
      ++stats_.shards_refreshed;
    } else {
      shards_.push_back(std::make_shared<const Shard>(snap, cfg_.index));
      ++stats_.shards_rebuilt;
    }
  }

  if (cfg_.scan_threads > 1) {
    // Reuse the previous engine's pool across incremental rebuilds so
    // worker threads survive the engine swap (both engines may serve
    // queries briefly; parallel_for serializes their batches).
    if (previous != nullptr && previous->pool_ != nullptr &&
        previous->pool_->workers() == cfg_.scan_threads - 1) {
      pool_ = previous->pool_;
    } else {
      pool_ = std::make_shared<ThreadPool>(cfg_.scan_threads - 1);
    }
  }
}

ShardedQueryEngine::~ShardedQueryEngine() = default;

std::span<const float> ShardedQueryEngine::embedding_row(NodeId u) const {
  if (u >= layout_.num_rows) {
    throw std::invalid_argument(
        "ShardedQueryEngine::embedding_row: node out of range");
  }
  const std::size_t s = layout_.shard_of(u);
  return shards_[s]->raw_row(u - shards_[s]->row_begin());
}

std::vector<Neighbor> ShardedQueryEngine::topk(
    std::span<const float> query, std::size_t k, Similarity sim,
    NodeId exclude, std::size_t nprobe_override) const {
  if (query.size() != dims_) {
    throw std::invalid_argument(
        "ShardedQueryEngine::topk: query dims mismatch");
  }
  static obs::Counter* const scans = obs::Registry::global().counter(
      "seqge_query_scans_total", {}, "Top-k scans executed");
  scans->add();
  std::vector<float> unit;
  std::span<const float> q = query;
  if (sim == Similarity::kCosine) {
    unit.assign(query.begin(), query.end());
    l2_normalize(unit);
    q = unit;
  }

  const bool use_ivf =
      cfg_.index.kind == IndexConfig::Kind::kIvf &&
      sim == Similarity::kCosine;
  const bool use_quant =
      cfg_.index.quant != QuantMode::kNone && sim == Similarity::kCosine;
  const std::size_t nprobe =
      nprobe_override != 0 ? nprobe_override : cfg_.index.nprobe;

  // Quantized scans collect k * rerank approximate candidates for the
  // float re-rank below; float scans accumulate the final k directly.
  const std::size_t acc_k =
      use_quant ? k * std::max<std::size_t>(cfg_.index.quant_rerank, 1)
                : k;
  QuantizedRowStore::QuantizedQuery qq;
  if (use_quant) {
    qq = QuantizedRowStore::quantize_query(
        q, {cfg_.index.quant_block, cfg_.index.quant_pow2,
            cfg_.index.quant == QuantMode::kBfp});
  }
  const auto scan_shard = [&](const Shard& shard, TopKAccumulator& top) {
    if (use_quant) {
      if (use_ivf) {
        shard.scan_ivf_quant(q, qq, nprobe, exclude, top);
      } else {
        shard.scan_exact_quant(qq, exclude, top);
      }
    } else if (use_ivf) {
      shard.scan_ivf(q, nprobe, exclude, top);
    } else {
      shard.scan_exact(q, sim, exclude, top);
    }
  };

  TopKAccumulator merged(acc_k);
  {
    // The scan_fanout span covers the whole shard sweep — threaded or
    // sequential — so every sharded engine shows up in the span table.
    OBS_SPAN("scan_fanout");
    if (pool_ != nullptr && shards_.size() > 1) {
      // Fan out: each shard fills its own accumulator, then the
      // per-shard winners merge in shard order. Shards cover ascending
      // node ranges and take() sorts ties by ascending node, so
      // equal-score arrivals reach `merged` in ascending node order —
      // exactly the sequential scan's arrival order, hence bit-
      // identical results.
      std::vector<std::vector<Neighbor>> locals(shards_.size());
      pool_->parallel_for(shards_.size(), [&](std::size_t s) {
        const bool timed = obs::enabled();
        const double t0 = timed ? obs::wall_us() : 0.0;
        TopKAccumulator local(acc_k);
        scan_shard(*shards_[s], local);
        locals[s] = local.take();
        if (timed) shard_scan_us()->observe(obs::wall_us() - t0);
      });
      for (const auto& local : locals) {
        for (const Neighbor& n : local) merged.offer(n.node, n.score);
      }
    } else {
      const bool timed = obs::enabled();
      for (const auto& shard : shards_) {
        const double t0 = timed ? obs::wall_us() : 0.0;
        scan_shard(*shard, merged);
        if (timed) shard_scan_us()->observe(obs::wall_us() - t0);
      }
    }
  }
  if (!use_quant) return merged.take();

  // Float re-rank of the quantized candidates, offered in ascending
  // node order so score ties resolve exactly like the float scan's.
  auto cands = merged.take();
  std::sort(cands.begin(), cands.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.node < b.node;
            });
  TopKAccumulator top(k);
  for (const Neighbor& c : cands) {
    const std::size_t s = layout_.shard_of(c.node);
    top.offer(c.node,
              dot<float>(shards_[s]->normalized_row(
                             c.node - shards_[s]->row_begin()),
                         q));
  }
  return top.take();
}

std::vector<Neighbor> ShardedQueryEngine::topk(
    NodeId u, std::size_t k, Similarity sim,
    std::size_t nprobe_override) const {
  // Route through the raw row, exactly like QueryEngine's node
  // overload, so the two produce identical results on the exact path.
  return topk(embedding_row(u), k, sim, u, nprobe_override);
}

double ShardedQueryEngine::score(NodeId u, NodeId v, EdgeScore kind) const {
  return score_edge(embedding_row(u), embedding_row(v), kind);
}

}  // namespace seqge::serve
