#pragma once
// Read-side query engine over one immutable embedding snapshot. Holds a
// shared_ptr<const Snapshot> (serve/embedding_store.hpp), so the
// snapshot outlives any in-flight query even after the store moves on.
// All query methods are const and safe to call from many threads at
// once — per-call scratch lives on the caller's stack.
//
// Two k-NN paths:
//  * exact brute force — every row scored with the dense kernels of
//    linalg/kernels.hpp (dot or cosine; cosine uses rows L2-normalized
//    once at construction, so a query is a pure dot scan);
//  * IVF (inverted-file) — a coarse spherical k-means quantizer built
//    per snapshot partitions the nodes into nlist cells; a query scores
//    the nlist centroids, then scans only the nprobe nearest cells.
//    Sub-linear in n, with recall controlled by nprobe (nprobe == nlist
//    degenerates to an exact scan). IVF search is cosine-ordered; dot
//    queries always take the exact path.
//
// Link-prediction scoring reuses the eval/ scorers (EdgeScore,
// score_edge) so a served score is bit-identical to the offline
// evaluation's.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "eval/link_prediction.hpp"
#include "linalg/matrix.hpp"
#include "serve/embedding_store.hpp"

namespace seqge::serve {

struct Neighbor {
  NodeId node = 0;
  float score = 0.0f;
};

enum class Similarity { kCosine, kDot };

struct IndexConfig {
  enum class Kind { kBruteForce, kIvf };
  Kind kind = Kind::kBruteForce;
  /// Coarse cells for the IVF index; 0 = ~sqrt(num_nodes), clamped to
  /// [1, num_nodes].
  std::size_t nlist = 0;
  /// Cells scanned per query (clamped to nlist). Larger = higher recall,
  /// slower.
  std::size_t nprobe = 8;
  /// Lloyd iterations for the spherical k-means quantizer.
  std::size_t kmeans_iters = 6;
  /// Rows used to train the quantizer (assignment always uses all rows);
  /// 0 = min(num_nodes, 64 * nlist).
  std::size_t kmeans_sample = 0;
  std::uint64_t seed = 1;
};

class QueryEngine {
 public:
  /// Builds the per-snapshot state (normalized rows; the IVF index when
  /// cfg.kind == kIvf). Throws on a null snapshot.
  explicit QueryEngine(std::shared_ptr<const Snapshot> snapshot,
                       IndexConfig cfg = {});

  [[nodiscard]] const Snapshot& snapshot() const noexcept { return *snap_; }
  [[nodiscard]] std::uint64_t version() const noexcept {
    return snap_->version;
  }
  [[nodiscard]] const IndexConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return snap_->num_nodes();
  }
  [[nodiscard]] std::size_t nlist() const noexcept {
    return centroids_.rows();
  }

  /// Top-k most similar nodes to node u (u itself excluded), best
  /// first. k is clamped to the number of candidates.
  [[nodiscard]] std::vector<Neighbor> topk(
      NodeId u, std::size_t k, Similarity sim = Similarity::kCosine,
      std::size_t nprobe_override = 0) const;

  /// Top-k against an arbitrary query vector (dims entries).
  /// `exclude` removes one node id from the results (pass num_nodes()
  /// or anything out of range to keep all).
  [[nodiscard]] std::vector<Neighbor> topk(
      std::span<const float> query, std::size_t k,
      Similarity sim = Similarity::kCosine, NodeId exclude = ~NodeId{0},
      std::size_t nprobe_override = 0) const;

  /// Batch top-k for many source nodes (OpenMP-parallel over queries —
  /// the serving analogue of the trainer's batched walks).
  [[nodiscard]] std::vector<std::vector<Neighbor>> topk_batch(
      std::span<const NodeId> nodes, std::size_t k,
      Similarity sim = Similarity::kCosine) const;

  /// Link-prediction score of candidate edge (u, v) — exactly
  /// eval/link_prediction.hpp's score_edge on this snapshot.
  [[nodiscard]] double score(NodeId u, NodeId v,
                             EdgeScore kind = EdgeScore::kCosine) const {
    return score_edge(snap_->embedding, u, v, kind);
  }

  /// ROC-AUC of held-out edges vs sampled non-edges on this snapshot
  /// (the eval/ link-prediction harness, served online).
  [[nodiscard]] double link_prediction_auc(const Graph& observed_graph,
                                           std::span<const Edge> held_out,
                                           EdgeScore kind, Rng& rng) const {
    return seqge::link_prediction_auc(snap_->embedding, observed_graph,
                                      held_out, kind, rng);
  }

 private:
  void build_ivf();
  [[nodiscard]] std::vector<Neighbor> scan_topk(
      std::span<const float> query, std::size_t k, Similarity sim,
      NodeId exclude, std::span<const std::uint32_t> candidates) const;

  std::shared_ptr<const Snapshot> snap_;
  IndexConfig cfg_;
  MatrixF normalized_;  ///< rows L2-normalized (zero rows stay zero)
  // IVF state (empty unless cfg_.kind == kIvf): spherical k-means
  // centroids (unit rows), CSR member lists, and the normalized rows
  // re-packed in list order so a probed cell scans contiguously.
  MatrixF centroids_;
  std::vector<std::uint32_t> list_off_;
  std::vector<std::uint32_t> list_nodes_;
  MatrixF packed_rows_;  ///< row i = normalized_.row(list_nodes_[i])
};

/// recall@k of `approx` against exact ground truth `exact`: fraction of
/// the exact set present in the approximate set. Used by the serving
/// bench and tests to validate IVF tuning.
[[nodiscard]] double recall_at_k(std::span<const Neighbor> exact,
                                 std::span<const Neighbor> approx);

}  // namespace seqge::serve
