#pragma once
// Read-side query engines over immutable embedding snapshots.
//
// SearchEngine is the minimal virtual surface the serving layer
// (serve/embedding_server.hpp) needs — version / top-k / edge-score —
// with two implementations:
//  * QueryEngine (this header) over one contiguous Snapshot
//    (serve/embedding_store.hpp);
//  * ShardedQueryEngine (serve/sharded_query.hpp) fanning out across
//    the per-shard snapshots of a ShardedEmbeddingStore.
//
// QueryEngine holds a shared_ptr<const Snapshot>, so the snapshot
// outlives any in-flight query even after the store moves on. All query
// methods are const and safe to call from many threads at once —
// per-call scratch lives on the caller's stack.
//
// Two k-NN paths:
//  * exact brute force — every row scored with the dense kernels of
//    linalg/kernels.hpp (dot or cosine; cosine uses rows L2-normalized
//    once at construction, so a query is a pure dot scan);
//  * IVF (inverted-file) — a coarse spherical k-means quantizer built
//    per snapshot partitions the nodes into nlist cells; a query scores
//    the nlist centroids, then scans only the nprobe nearest cells.
//    Sub-linear in n, with recall controlled by nprobe (nprobe == nlist
//    degenerates to an exact scan). IVF search is cosine-ordered; dot
//    queries always take the exact path.
//
// Link-prediction scoring reuses the eval/ scorers (EdgeScore,
// score_edge) so a served score is bit-identical to the offline
// evaluation's.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "eval/link_prediction.hpp"
#include "linalg/matrix.hpp"
#include "serve/embedding_store.hpp"
#include "serve/quantized_store.hpp"

namespace seqge::serve {

struct Neighbor {
  NodeId node = 0;
  float score = 0.0f;
};

enum class Similarity { kCosine, kDot };

/// What the server routes requests through: any engine answering
/// against one immutable embedding version. Implementations are
/// immutable after construction, so every method is safe to call from
/// many threads at once with no locking.
class SearchEngine {
 public:
  virtual ~SearchEngine() = default;

  /// Store version this engine was built for (response freshness tag).
  [[nodiscard]] virtual std::uint64_t version() const = 0;

  /// Top-k most similar nodes to node u (u itself excluded), best
  /// first; ties broken by ascending node id. k is clamped to the
  /// number of candidates.
  [[nodiscard]] virtual std::vector<Neighbor> topk(
      NodeId u, std::size_t k, Similarity sim = Similarity::kCosine,
      std::size_t nprobe_override = 0) const = 0;

  /// Link-prediction score of candidate edge (u, v), bit-identical to
  /// eval/link_prediction.hpp's score_edge on the same embedding.
  [[nodiscard]] virtual double score(NodeId u, NodeId v,
                                     EdgeScore kind = EdgeScore::kCosine)
      const = 0;
};

/// Fixed-capacity top-k accumulator: a min-heap on score keeps the k
/// best seen so far, so a full scan is O(n log k). offer() admission
/// depends only on scores (ties at the cutoff keep the earlier
/// arrival), so two engines offering the same (node, score) stream in
/// the same order produce identical results — that is what makes the
/// sharded fan-out bit-identical to the single-store exact scan.
class TopKAccumulator {
 public:
  explicit TopKAccumulator(std::size_t k) : k_(k) { heap_.reserve(k + 1); }

  void offer(NodeId node, float score) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.push_back({node, score});
      std::push_heap(heap_.begin(), heap_.end(), worse);
    } else if (score > heap_.front().score) {
      std::pop_heap(heap_.begin(), heap_.end(), worse);
      heap_.back() = {node, score};
      std::push_heap(heap_.begin(), heap_.end(), worse);
    }
  }

  /// Best first; ties broken by node id for deterministic output.
  [[nodiscard]] std::vector<Neighbor> take();

 private:
  static bool worse(const Neighbor& a, const Neighbor& b) {
    return a.score != b.score ? a.score > b.score : a.node < b.node;
  }
  std::size_t k_;
  std::vector<Neighbor> heap_;
};

/// L2-normalize every row in place (zero rows stay zero) — the shared
/// preprocessing of every cosine path; using exactly this function
/// everywhere keeps scores bit-identical across engines.
void l2_normalize_rows(MatrixF& m);
/// L2-normalize one vector in place.
void l2_normalize(std::span<float> v);

struct IndexConfig {
  enum class Kind { kBruteForce, kIvf };
  Kind kind = Kind::kBruteForce;
  /// Coarse cells for the IVF index; 0 = ~sqrt(num_nodes), clamped to
  /// [1, num_nodes].
  std::size_t nlist = 0;
  /// Cells scanned per query (clamped to nlist). Larger = higher recall,
  /// slower.
  std::size_t nprobe = 8;
  /// Lloyd iterations for the spherical k-means quantizer.
  std::size_t kmeans_iters = 6;
  /// Rows used to train the quantizer (assignment always uses all rows);
  /// 0 = min(num_nodes, 64 * nlist).
  std::size_t kmeans_sample = 0;
  std::uint64_t seed = 1;
  /// Opt-in quantized scan (cosine queries only; dot always takes the
  /// float path): the exact/IVF scan scores int8-quantized rows (kInt8:
  /// float scales; kBfp: int16 shared exponents per block), then the
  /// best k * quant_rerank candidates are re-ranked with the float
  /// rows, holding recall@10 >= 0.95 vs. the float scan at a fraction
  /// of the scan bandwidth (serve/quantized_store.hpp).
  QuantMode quant = QuantMode::kNone;
  /// Dims per quantization scale group (0 = one scale per row).
  std::size_t quant_block = 0;
  /// Power-of-two scales (BFP shared exponent).
  bool quant_pow2 = false;
  /// Candidate multiplier for the float re-rank (clamped to >= 1).
  /// 8 is the measured knee at 50k-node scale: 4 plateaus near
  /// recall 0.9 (approximate-order misses fall outside the candidate
  /// set), 16 doubles the re-rank cost for < 0.04 more recall.
  std::size_t quant_rerank = 8;
};

/// Coarse spherical-k-means quantizer + CSR member lists over a set of
/// L2-normalized rows — the IVF state shared by QueryEngine (full
/// rebuild per snapshot) and the sharded engine's incremental
/// maintenance (serve/sharded_query.hpp), which keeps the centroids and
/// re-assigns only rows that moved.
struct IvfIndex {
  MatrixF centroids;                      ///< nlist x dims, unit rows
  std::vector<std::uint32_t> cell;        ///< row -> cell
  /// dot(row, centroids[cell[row]]) at the time the row was (re-)
  /// assigned — the drift baseline for incremental maintenance: a
  /// refresh re-runs the nearest-centroid scan once a row's affinity
  /// to its assigned centroid has decayed past a threshold *since
  /// assignment*, so sub-threshold drift accumulates instead of being
  /// forgotten at each refresh.
  std::vector<float> cell_dot;
  std::vector<std::uint32_t> list_off;    ///< nlist + 1 CSR offsets
  std::vector<std::uint32_t> list_nodes;  ///< row ids in list order

  [[nodiscard]] std::size_t nlist() const noexcept {
    return centroids.rows();
  }
  [[nodiscard]] bool empty() const noexcept { return centroids.empty(); }

  /// Full build: train the quantizer on a sample of `normalized`, then
  /// assign every row and build the CSR lists.
  void build(const MatrixF& normalized, const IndexConfig& cfg);
  /// Index of the centroid nearest (max dot) to the unit row; the
  /// two-argument overload also reports that best dot.
  [[nodiscard]] std::size_t nearest(std::span<const float> row) const;
  [[nodiscard]] std::size_t nearest(std::span<const float> row,
                                    float& best_dot) const;
  /// Rebuild list_off/list_nodes from cell (after re-assignments).
  void rebuild_lists();
};

class QueryEngine : public SearchEngine {
 public:
  /// Builds the per-snapshot state (normalized rows; the IVF index when
  /// cfg.kind == kIvf). Throws on a null snapshot.
  explicit QueryEngine(std::shared_ptr<const Snapshot> snapshot,
                       IndexConfig cfg = {});

  [[nodiscard]] const Snapshot& snapshot() const noexcept { return *snap_; }
  [[nodiscard]] std::uint64_t version() const noexcept override {
    return snap_->version;
  }
  [[nodiscard]] const IndexConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return snap_->num_nodes();
  }
  [[nodiscard]] std::size_t nlist() const noexcept {
    return ivf_.nlist();
  }

  /// Top-k most similar nodes to node u (u itself excluded), best
  /// first. k is clamped to the number of candidates.
  [[nodiscard]] std::vector<Neighbor> topk(
      NodeId u, std::size_t k, Similarity sim = Similarity::kCosine,
      std::size_t nprobe_override = 0) const override;

  /// Top-k against an arbitrary query vector (dims entries).
  /// `exclude` removes one node id from the results (pass num_nodes()
  /// or anything out of range to keep all).
  [[nodiscard]] std::vector<Neighbor> topk(
      std::span<const float> query, std::size_t k,
      Similarity sim = Similarity::kCosine, NodeId exclude = ~NodeId{0},
      std::size_t nprobe_override = 0) const;

  /// Batch top-k for many source nodes (OpenMP-parallel over queries —
  /// the serving analogue of the trainer's batched walks).
  [[nodiscard]] std::vector<std::vector<Neighbor>> topk_batch(
      std::span<const NodeId> nodes, std::size_t k,
      Similarity sim = Similarity::kCosine) const;

  /// Link-prediction score of candidate edge (u, v) — exactly
  /// eval/link_prediction.hpp's score_edge on this snapshot.
  [[nodiscard]] double score(NodeId u, NodeId v,
                             EdgeScore kind = EdgeScore::kCosine)
      const override {
    return score_edge(snap_->embedding, u, v, kind);
  }

  /// ROC-AUC of held-out edges vs sampled non-edges on this snapshot
  /// (the eval/ link-prediction harness, served online).
  [[nodiscard]] double link_prediction_auc(const Graph& observed_graph,
                                           std::span<const Edge> held_out,
                                           EdgeScore kind, Rng& rng) const {
    return seqge::link_prediction_auc(snap_->embedding, observed_graph,
                                      held_out, kind, rng);
  }

 private:
  void build_ivf();
  [[nodiscard]] std::vector<Neighbor> scan_topk(
      std::span<const float> query, std::size_t k, Similarity sim,
      NodeId exclude, std::span<const std::uint32_t> candidates) const;
  /// Int8 candidate scan + float re-rank (cfg_.quant == kInt8, cosine).
  [[nodiscard]] std::vector<Neighbor> topk_quant(
      std::span<const float> unit_q, std::size_t k, NodeId exclude,
      std::size_t nprobe_override) const;

  std::shared_ptr<const Snapshot> snap_;
  IndexConfig cfg_;
  MatrixF normalized_;  ///< rows L2-normalized (zero rows stay zero)
  // IVF state (empty unless cfg_.kind == kIvf), plus the normalized
  // rows re-packed in list order so a probed cell scans contiguously.
  IvfIndex ivf_;
  MatrixF packed_rows_;  ///< row i = normalized_.row(ivf_.list_nodes[i])
  // Int8 codes (empty unless cfg_.quant == kInt8) over normalized_ —
  // or over packed_rows_ when IVF is on, so probed cells stay
  // contiguous in the code array too.
  QuantizedRowStore quant_;
};

/// recall@k of `approx` against exact ground truth `exact`: fraction of
/// the exact set present in the approximate set. Used by the serving
/// bench and tests to validate IVF tuning.
[[nodiscard]] double recall_at_k(std::span<const Neighbor> exact,
                                 std::span<const Neighbor> approx);

}  // namespace seqge::serve
