#pragma once
// Versioned snapshot store decoupling online training from query
// serving — the host-side half of the board split (the PL/trainer
// produces embedding versions, the PS/server answers queries against
// them). Publication is RCU-style: a publisher builds a complete
// immutable Snapshot off to the side, then swaps one
// std::atomic<std::shared_ptr<const Snapshot>> head. Readers acquire
// the head with a single atomic load and hold a reference for as long
// as the query runs; they never block the publisher and never observe a
// partially written ("torn") embedding, and old snapshots are reclaimed
// automatically when the last reader drops its reference.
//
// EmbeddingStore implements SnapshotSink, so the training pipelines
// (trainer.hpp, PipelineConfig::snapshot_sink) publish into it directly
// at a configurable cadence. It keeps SnapshotSink's default on_delta
// (forwarding to on_snapshot), so every publication copies the full
// matrix — the right trade at small n. This store is the N = 1 special
// case of serve/sharded_store.hpp, which publishes copy-on-write row
// deltas and swaps per-shard heads for O(touched)-cost publication at
// scale. Snapshots also round-trip through the binary checkpoint
// format (embedding/checkpoint.hpp), so a store can be warmed from a
// file written by any backend — including the FPGA accelerator, whose
// Q8.24 weights dequantize on save.
//
// Threading guarantees: publish()/on_snapshot may be called from any
// one thread at a time (publishers serialize on an internal mutex;
// the trainers already serialize sink calls); current()/version() are
// lock-free and safe from any number of threads; versions are strictly
// monotonic, assigned under the publish lock.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "embedding/trainer.hpp"
#include "linalg/matrix.hpp"

namespace seqge::serve {

/// One published embedding version. Immutable after publication — the
/// store hands out shared_ptr<const Snapshot> and never mutates a
/// snapshot in place.
struct Snapshot {
  std::uint64_t version = 0;        ///< monotonically increasing, from 1
  MatrixF embedding;                ///< one row per node
  std::uint64_t walks_trained = 0;  ///< producer progress when captured
  std::string producer;             ///< model name, for observability
  /// Tombstone bitmap: dead[r] != 0 marks a node deleted from the graph
  /// — query engines must skip its row. Empty (the common, insert-only
  /// case) means no tombstones; when non-empty its size is num_nodes().
  std::vector<std::uint8_t> dead;

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return embedding.rows();
  }
  [[nodiscard]] std::size_t dims() const noexcept {
    return embedding.cols();
  }
  [[nodiscard]] bool tombstoned(std::size_t r) const noexcept {
    return !dead.empty() && dead[r] != 0;
  }
};

class EmbeddingStore final : public SnapshotSink {
 public:
  EmbeddingStore() = default;
  EmbeddingStore(const EmbeddingStore&) = delete;
  EmbeddingStore& operator=(const EmbeddingStore&) = delete;

  /// Publish a new version (takes ownership of the matrix; version is
  /// assigned by the store). Publishers are serialized against each
  /// other; readers are never blocked. Returns the assigned version.
  std::uint64_t publish(MatrixF embedding, std::uint64_t walks_trained = 0,
                        std::string producer = {});

  /// The latest snapshot, or nullptr before the first publish. One
  /// atomic load; the caller's shared_ptr keeps the snapshot alive for
  /// the duration of its query regardless of later publishes.
  [[nodiscard]] std::shared_ptr<const Snapshot> current() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  /// Latest published version (0 before the first publish).
  [[nodiscard]] std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

  /// Total snapshots published over the store's lifetime (== version()).
  [[nodiscard]] std::uint64_t snapshots_published() const noexcept {
    return version();
  }

  /// Block until version() >= v. Returns false on timeout. Lets a
  /// serving thread wait for the trainer's first publication instead of
  /// spinning.
  bool wait_for_version(std::uint64_t v,
                        std::chrono::milliseconds timeout) const;

  // --- SnapshotSink -------------------------------------------------------
  /// Publish model.extract_embedding(); called by the trainers on the
  /// consumer thread at the configured cadence.
  void on_snapshot(const EmbeddingModel& model,
                   const TrainStats& stats) override;

  /// Replace the tombstone set: `nodes` (ascending, unique, in range)
  /// becomes the complete set of dead rows of the next version. This
  /// store is full-copy-per-publish by design, so the tombstone publish
  /// also copies the matrix (O(n) — the N = 1 trade; the sharded store
  /// does it with a zero-copy bitmap swap). Ignored before the first
  /// publish.
  void on_tombstone(std::span<const NodeId> nodes) override;

  // --- checkpoint persistence ---------------------------------------------
  /// Write the current snapshot in the binary checkpoint format
  /// (beta = embedding, no covariance). Throws if the store is empty.
  void save(std::ostream& os) const;
  void save(const std::string& path) const;
  /// Read a checkpoint (any payload kind; a covariance block, if
  /// present, is skipped) and publish it as the next version. Returns
  /// the assigned version.
  std::uint64_t load(std::istream& is, std::string producer = "checkpoint");
  std::uint64_t load(const std::string& path);

 private:
  std::atomic<std::shared_ptr<const Snapshot>> head_{nullptr};
  std::atomic<std::uint64_t> version_{0};
  // Serializes publishers and backs wait_for_version. Readers never
  // take this mutex.
  mutable std::mutex publish_mutex_;
  mutable std::condition_variable version_cv_;
};

}  // namespace seqge::serve
