#pragma once
// Fan-out/merge query engine over a ShardedEmbeddingStore: one
// per-shard sub-engine (normalized rows + optional per-shard IVF index)
// and a shared top-k accumulator merging across shards.
//
// Exact path: shards are scanned in node order with the same kernels,
// normalization, and accumulator as QueryEngine, so results —
// neighbors, scores, tie-breaks — are bit-identical to the unsharded
// exact scan over the same embedding values (tests assert this).
//
// IVF path: each shard carries its own coarse quantizer sized to the
// shard (nlist = 0 -> ~sqrt(shard rows)); a query probes `nprobe`
// cells *per shard* and all probed candidates merge through one
// accumulator.
//
// Incremental maintenance (ROADMAP "Incremental index maintenance"):
// constructing an engine with `previous` set reuses the prior engine's
// per-shard state instead of re-clustering —
//  * a shard whose snapshot version is unchanged is shared outright
//    (zero work, zero memory);
//  * a changed shard whose base lineage still covers the previous
//    engine (snapshot.base_version <= previous shard version) is
//    refreshed from the previous shard state: the shard's normalized
//    rows and index arrays are memcpy'd (engines are immutable, so the
//    new engine gets its own copy — O(shard) in bytes but no dot
//    products), then only ShardSnapshot::changed_since_base rows are
//    re-normalized, and a row re-runs the nearest-cell scan only once
//    its affinity to its assigned centroid has decayed more than
//    `reassign_threshold` below the assignment-time baseline (drift
//    accumulates across refreshes, so slow movers still re-assign).
//    What is skipped — k-means re-training and the full-shard
//    assignment pass — is the dominant rebuild cost;
//  * anything else (rebase/compaction since the previous engine) is
//    rebuilt from scratch.
// refresh_stats() reports which path each shard took.
//
// Like QueryEngine, an engine is immutable after construction: every
// query method is const and safe from any number of threads, and the
// engine keeps the shard snapshots it was built from alive.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "serve/query_engine.hpp"
#include "serve/sharded_store.hpp"
#include "util/thread_pool.hpp"

namespace seqge::serve {

struct ShardedIndexConfig {
  /// Per-shard index configuration (IndexConfig::nlist == 0 sizes each
  /// shard's quantizer to ~sqrt(its rows); nprobe applies per shard).
  IndexConfig index{};
  /// Affinity decay (drop of dot(row, assigned centroid) below the
  /// assignment-time baseline, unit vectors) past which an
  /// incrementally refreshed row re-runs the nearest-cell scan.
  /// Measured against the baseline, not the previous refresh, so
  /// cumulative sub-threshold drift still triggers. 0 re-scans every
  /// changed row.
  float reassign_threshold = 0.05f;
  /// Threads applied to each query's per-shard fan-out (the calling
  /// thread counts, so N uses N-1 pool workers). 0 or 1 scans shards
  /// sequentially inline — the exact pre-fan-out code path. The exact
  /// path stays bit-identical either way: each shard accumulates its
  /// own top-k and the per-shard winners merge in shard order, which
  /// preserves the ascending-node arrival order score ties depend on
  /// (tests gate this against the N=1 engine).
  std::size_t scan_threads = 0;
};

/// How each shard was brought up to date by the last construction.
struct ShardedRefreshStats {
  std::size_t shards_reused = 0;     ///< shared from `previous` untouched
  std::size_t shards_refreshed = 0;  ///< incremental row updates only
  std::size_t shards_rebuilt = 0;    ///< full rebuild (incl. first build)
  std::size_t rows_updated = 0;      ///< changed rows re-normalized
  std::size_t rows_reassigned = 0;   ///< moved past threshold, new cell
};

class ShardedQueryEngine final : public SearchEngine {
 public:
  /// Builds per-shard engines for the store's current shard heads.
  /// `previous` (optional) must be an engine over the same store built
  /// with the same config; its per-shard state is reused/refreshed as
  /// described above. Throws std::invalid_argument on an empty store.
  explicit ShardedQueryEngine(const ShardedEmbeddingStore& store,
                              ShardedIndexConfig cfg = {},
                              const ShardedQueryEngine* previous = nullptr);
  ~ShardedQueryEngine() override;

  [[nodiscard]] std::uint64_t version() const noexcept override {
    return version_;
  }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return layout_.num_rows;
  }
  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] const ShardedIndexConfig& config() const noexcept {
    return cfg_;
  }
  [[nodiscard]] const ShardedRefreshStats& refresh_stats() const noexcept {
    return stats_;
  }

  /// Raw (un-normalized) embedding row of node u, backed by the shard
  /// snapshots this engine holds alive.
  [[nodiscard]] std::span<const float> embedding_row(NodeId u) const;

  [[nodiscard]] std::vector<Neighbor> topk(
      NodeId u, std::size_t k, Similarity sim = Similarity::kCosine,
      std::size_t nprobe_override = 0) const override;

  /// Top-k against an arbitrary query vector; `exclude` removes one
  /// node id (out-of-range keeps all).
  [[nodiscard]] std::vector<Neighbor> topk(
      std::span<const float> query, std::size_t k,
      Similarity sim = Similarity::kCosine, NodeId exclude = ~NodeId{0},
      std::size_t nprobe_override = 0) const;

  [[nodiscard]] double score(NodeId u, NodeId v,
                             EdgeScore kind = EdgeScore::kCosine)
      const override;

 private:
  class Shard;

  ShardedIndexConfig cfg_;
  std::uint64_t version_ = 0;
  std::size_t dims_ = 0;
  ShardLayout layout_;  ///< copied from the store: one mapping truth
  std::vector<std::shared_ptr<const Shard>> shards_;
  ShardedRefreshStats stats_;
  /// Fan-out pool (null when cfg_.scan_threads <= 1); shared with the
  /// previous engine across incremental rebuilds so worker threads
  /// survive engine swaps.
  std::shared_ptr<ThreadPool> pool_;
};

}  // namespace seqge::serve
