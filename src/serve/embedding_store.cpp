#include "serve/embedding_store.hpp"

#include <fstream>
#include <stdexcept>
#include <utility>

#include "embedding/checkpoint.hpp"
#include "embedding/model.hpp"

namespace seqge::serve {

std::uint64_t EmbeddingStore::publish(MatrixF embedding,
                                      std::uint64_t walks_trained,
                                      std::string producer) {
  if (embedding.empty()) {
    throw std::invalid_argument("EmbeddingStore::publish: empty embedding");
  }
  auto snap = std::make_shared<Snapshot>();
  snap->embedding = std::move(embedding);
  snap->walks_trained = walks_trained;
  snap->producer = std::move(producer);

  std::uint64_t assigned = 0;
  {
    std::lock_guard lock(publish_mutex_);
    assigned = version_.load(std::memory_order_relaxed) + 1;
    snap->version = assigned;
    // Readers that loaded the old head keep it alive through their own
    // shared_ptr; this store is the only mutation, and it is atomic.
    head_.store(std::move(snap), std::memory_order_release);
    version_.store(assigned, std::memory_order_release);
  }
  version_cv_.notify_all();
  return assigned;
}

bool EmbeddingStore::wait_for_version(
    std::uint64_t v, std::chrono::milliseconds timeout) const {
  std::unique_lock lock(publish_mutex_);
  return version_cv_.wait_for(lock, timeout, [&] {
    return version_.load(std::memory_order_acquire) >= v;
  });
}

void EmbeddingStore::on_snapshot(const EmbeddingModel& model,
                                 const TrainStats& stats) {
  publish(model.extract_embedding(), stats.num_walks, model.name());
}

void EmbeddingStore::on_tombstone(std::span<const NodeId> nodes) {
  const auto old = current();
  if (old == nullptr) return;  // nothing served yet
  auto snap = std::make_shared<Snapshot>();
  snap->embedding = old->embedding;  // full copy — the N = 1 trade
  snap->walks_trained = old->walks_trained;
  snap->producer = old->producer;
  if (!nodes.empty()) {
    snap->dead.assign(old->num_nodes(), 0);
    for (NodeId v : nodes) {
      if (v >= snap->num_nodes()) {
        throw std::invalid_argument(
            "EmbeddingStore::on_tombstone: node out of range");
      }
      snap->dead[v] = 1;
    }
  }
  std::uint64_t assigned = 0;
  {
    std::lock_guard lock(publish_mutex_);
    assigned = version_.load(std::memory_order_relaxed) + 1;
    snap->version = assigned;
    head_.store(std::move(snap), std::memory_order_release);
    version_.store(assigned, std::memory_order_release);
  }
  version_cv_.notify_all();
}

void EmbeddingStore::save(std::ostream& os) const {
  const auto snap = current();
  if (snap == nullptr) {
    throw std::runtime_error("EmbeddingStore::save: no snapshot published");
  }
  write_checkpoint(os, snap->embedding, nullptr);
}

void EmbeddingStore::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw std::runtime_error("EmbeddingStore::save: cannot open " + path);
  }
  save(os);
}

std::uint64_t EmbeddingStore::load(std::istream& is, std::string producer) {
  const CheckpointHeader h = read_checkpoint_header(is);
  MatrixF beta;
  MatrixF covariance;  // read-and-discard keeps the stream consumable
  read_checkpoint_payload(is, h, beta,
                          h.has_covariance ? &covariance : nullptr);
  return publish(std::move(beta), 0, std::move(producer));
}

std::uint64_t EmbeddingStore::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("EmbeddingStore::load: cannot open " + path);
  }
  return load(is, path);
}

}  // namespace seqge::serve
