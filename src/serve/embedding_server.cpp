#include "serve/embedding_server.hpp"

#include <algorithm>
#include <stdexcept>

#include "serve/sharded_query.hpp"

namespace seqge::serve {

namespace {

/// Process-wide serving metrics, shared by every server instance (the
/// per-instance latency histogram backs LatencySummary separately).
struct ServeMetrics {
  obs::Counter* requests;
  obs::Counter* rejected;
  obs::Counter* rebuilds;
  obs::Gauge* queue_depth;
  obs::Histogram* request_us;
};

ServeMetrics& serve_metrics() {
  static ServeMetrics m{
      obs::Registry::global().counter("seqge_serve_requests_total", {},
                                      "Requests accepted into the queue"),
      obs::Registry::global().counter(
          "seqge_serve_rejected_total", {},
          "Requests rejected (server draining)"),
      obs::Registry::global().counter("seqge_serve_engine_rebuilds_total", {},
                                      "Search-engine (re)builds"),
      obs::Registry::global().gauge("seqge_serve_queue_depth", {},
                                    "Requests queued, not yet answered"),
      obs::Registry::global().histogram(
          "seqge_serve_request_us", obs::default_latency_buckets_us(), {},
          "Request latency, enqueue to response (microseconds)"),
  };
  return m;
}

}  // namespace

EmbeddingServer::EmbeddingServer(std::shared_ptr<const EmbeddingStore> store,
                                 ServerConfig cfg)
    : EmbeddingServer(std::move(store), nullptr, cfg) {}

EmbeddingServer::EmbeddingServer(
    std::shared_ptr<const ShardedEmbeddingStore> store, ServerConfig cfg)
    : EmbeddingServer(nullptr, std::move(store), cfg) {}

EmbeddingServer::EmbeddingServer(
    std::shared_ptr<const EmbeddingStore> store,
    std::shared_ptr<const ShardedEmbeddingStore> sharded, ServerConfig cfg)
    : store_(std::move(store)),
      sharded_store_(std::move(sharded)),
      cfg_(cfg),
      queue_(cfg.queue_capacity == 0 ? 1 : cfg.queue_capacity),
      latency_hist_(obs::default_latency_buckets_us()) {
  if (store_ == nullptr && sharded_store_ == nullptr) {
    throw std::invalid_argument("EmbeddingServer: null store");
  }
  if (cfg_.threads == 0) cfg_.threads = 1;
  workers_.reserve(cfg_.threads);
  for (std::size_t t = 0; t < cfg_.threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

EmbeddingServer::~EmbeddingServer() { drain(); }

void EmbeddingServer::drain() {
  queue_.close();
  for (auto& th : workers_) {
    if (th.joinable()) th.join();
  }
}

std::size_t EmbeddingServer::drain_for(std::chrono::milliseconds timeout) {
  queue_.close();
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const std::int64_t left = pending_.load(std::memory_order_acquire);
    if (left <= 0) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      return static_cast<std::size_t>(left);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Fully drained: the workers are about to (or already did) observe
  // the closed, empty queue and exit; joining cannot block.
  for (auto& th : workers_) {
    if (th.joinable()) th.join();
  }
  return 0;
}

bool EmbeddingServer::submit(Request&& req, bool blocking) {
  req.enqueued = std::chrono::steady_clock::now();
  pending_.fetch_add(1, std::memory_order_acq_rel);
  const bool accepted = blocking ? queue_.push(std::move(req))
                                 : queue_.try_push(std::move(req));
  if (!accepted) {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    serve_metrics().rejected->add();
    return false;
  }
  serve_metrics().requests->add();
  serve_metrics().queue_depth->add();
  return true;
}

std::future<TopKResult> EmbeddingServer::topk(NodeId u, std::size_t k) {
  Request req;
  req.type = RequestType::kTopK;
  req.u = u;
  req.k = k;
  std::future<TopKResult> fut = req.topk_promise.get_future();
  if (!submit(std::move(req), /*blocking=*/true)) {
    throw std::runtime_error("EmbeddingServer: draining, request rejected");
  }
  return fut;
}

std::future<ScoreResult> EmbeddingServer::score(NodeId u, NodeId v,
                                                EdgeScore kind) {
  Request req;
  req.type = RequestType::kScore;
  req.u = u;
  req.v = v;
  req.score_kind = kind;
  std::future<ScoreResult> fut = req.score_promise.get_future();
  if (!submit(std::move(req), /*blocking=*/true)) {
    throw std::runtime_error("EmbeddingServer: draining, request rejected");
  }
  return fut;
}

std::future<TopKBatchResult> EmbeddingServer::topk_batch(
    std::vector<NodeId> nodes, std::size_t k) {
  Request req;
  req.type = RequestType::kTopKBatch;
  req.k = k;
  req.nodes = std::move(nodes);
  std::future<TopKBatchResult> fut = req.topk_batch_promise.get_future();
  if (!submit(std::move(req), /*blocking=*/true)) {
    throw std::runtime_error("EmbeddingServer: draining, request rejected");
  }
  return fut;
}

std::future<ScoreBatchResult> EmbeddingServer::score_batch(
    std::vector<std::pair<NodeId, NodeId>> pairs, EdgeScore kind) {
  Request req;
  req.type = RequestType::kScoreBatch;
  req.score_kind = kind;
  req.pairs = std::move(pairs);
  std::future<ScoreBatchResult> fut = req.score_batch_promise.get_future();
  if (!submit(std::move(req), /*blocking=*/true)) {
    throw std::runtime_error("EmbeddingServer: draining, request rejected");
  }
  return fut;
}

std::optional<std::future<TopKResult>> EmbeddingServer::try_topk(
    NodeId u, std::size_t k) {
  Request req;
  req.type = RequestType::kTopK;
  req.u = u;
  req.k = k;
  std::future<TopKResult> fut = req.topk_promise.get_future();
  if (!submit(std::move(req), /*blocking=*/false)) return std::nullopt;
  return fut;
}

std::optional<std::future<ScoreResult>> EmbeddingServer::try_score(
    NodeId u, NodeId v, EdgeScore kind) {
  Request req;
  req.type = RequestType::kScore;
  req.u = u;
  req.v = v;
  req.score_kind = kind;
  std::future<ScoreResult> fut = req.score_promise.get_future();
  if (!submit(std::move(req), /*blocking=*/false)) return std::nullopt;
  return fut;
}

std::optional<std::future<TopKBatchResult>> EmbeddingServer::try_topk_batch(
    std::vector<NodeId> nodes, std::size_t k) {
  Request req;
  req.type = RequestType::kTopKBatch;
  req.k = k;
  req.nodes = std::move(nodes);
  std::future<TopKBatchResult> fut = req.topk_batch_promise.get_future();
  if (!submit(std::move(req), /*blocking=*/false)) return std::nullopt;
  return fut;
}

std::optional<std::future<ScoreBatchResult>> EmbeddingServer::try_score_batch(
    std::vector<std::pair<NodeId, NodeId>> pairs, EdgeScore kind) {
  Request req;
  req.type = RequestType::kScoreBatch;
  req.score_kind = kind;
  req.pairs = std::move(pairs);
  std::future<ScoreBatchResult> fut = req.score_batch_promise.get_future();
  if (!submit(std::move(req), /*blocking=*/false)) return std::nullopt;
  return fut;
}

std::uint64_t EmbeddingServer::store_version() const {
  return store_ != nullptr ? store_->version() : sharded_store_->version();
}

std::shared_ptr<const SearchEngine> EmbeddingServer::engine() {
  const std::uint64_t live = store_version();
  if (live == 0) return nullptr;
  auto cached = engine_.load(std::memory_order_acquire);
  if (cached != nullptr && cached->version() >= live) return cached;

  // A rebuild (IVF: k-means over every node) can take a while; while
  // one worker builds, the rest keep answering from the still-valid
  // previous snapshot instead of stalling the whole pool.
  std::unique_lock lock(rebuild_mutex_, std::try_to_lock);
  if (!lock.owns_lock()) {
    if (cached != nullptr) return cached;
    lock.lock();  // no engine yet — nothing to serve, must wait
  }
  cached = engine_.load(std::memory_order_acquire);
  std::shared_ptr<const SearchEngine> built;
  if (store_ != nullptr) {
    const auto snap = store_->current();  // may be newer than `live`
    if (cached != nullptr && cached->version() >= snap->version) {
      return cached;
    }
    built = std::make_shared<const QueryEngine>(snap, cfg_.index);
  } else {
    if (cached != nullptr && cached->version() >= sharded_store_->version()) {
      return cached;
    }
    // Incremental: reuse/refresh the previous engine's per-shard state
    // instead of re-clustering every shard on each publish.
    const auto* prev =
        dynamic_cast<const ShardedQueryEngine*>(cached.get());
    built = std::make_shared<const ShardedQueryEngine>(
        *sharded_store_,
        ShardedIndexConfig{cfg_.index, cfg_.ivf_reassign_threshold,
                           cfg_.scan_threads},
        prev);
  }
  engine_.store(built, std::memory_order_release);
  rebuilds_.fetch_add(1, std::memory_order_relaxed);
  serve_metrics().rebuilds->add();
  return built;
}

void EmbeddingServer::record(const Request& req, std::size_t weight) {
  const double us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - req.enqueued)
          .count();
  latency_hist_.observe(us);
  serve_metrics().request_us->observe(us);
  served_.fetch_add(weight, std::memory_order_relaxed);
}

void EmbeddingServer::answer(Request& req) {
  const auto eng = engine();
  if (eng == nullptr) {
    throw std::runtime_error("EmbeddingServer: no snapshot published yet");
  }
  switch (req.type) {
    case RequestType::kTopK: {
      TopKResult res;
      res.version = eng->version();
      res.neighbors = eng->topk(req.u, req.k, cfg_.similarity);
      req.topk_promise.set_value(std::move(res));
      break;
    }
    case RequestType::kScore: {
      ScoreResult res;
      res.version = eng->version();
      res.score = eng->score(req.u, req.v, req.score_kind);
      req.score_promise.set_value(std::move(res));
      break;
    }
    case RequestType::kTopKBatch: {
      TopKBatchResult res;
      res.version = eng->version();
      res.results.reserve(req.nodes.size());
      for (NodeId u : req.nodes) {
        res.results.push_back(eng->topk(u, req.k, cfg_.similarity));
      }
      req.topk_batch_promise.set_value(std::move(res));
      break;
    }
    case RequestType::kScoreBatch: {
      ScoreBatchResult res;
      res.version = eng->version();
      res.scores.reserve(req.pairs.size());
      for (const auto& [u, v] : req.pairs) {
        res.scores.push_back(eng->score(u, v, req.score_kind));
      }
      req.score_batch_promise.set_value(std::move(res));
      break;
    }
  }
}

void EmbeddingServer::worker_loop() {
  for (;;) {
    auto item = queue_.pop();
    if (!item) break;  // closed and drained
    serve_metrics().queue_depth->sub();
    Request& req = *item;
    try {
      answer(req);
    } catch (...) {
      auto err = std::current_exception();
      switch (req.type) {
        case RequestType::kTopK:
          req.topk_promise.set_exception(err);
          break;
        case RequestType::kScore:
          req.score_promise.set_exception(err);
          break;
        case RequestType::kTopKBatch:
          req.topk_batch_promise.set_exception(err);
          break;
        case RequestType::kScoreBatch:
          req.score_batch_promise.set_exception(err);
          break;
      }
    }
    std::size_t weight = 1;
    if (req.type == RequestType::kTopKBatch) {
      weight = std::max<std::size_t>(1, req.nodes.size());
    } else if (req.type == RequestType::kScoreBatch) {
      weight = std::max<std::size_t>(1, req.pairs.size());
    }
    record(req, weight);
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

std::uint64_t EmbeddingServer::queries_served() const {
  return served_.load(std::memory_order_relaxed);
}

std::uint64_t EmbeddingServer::engine_rebuilds() const {
  return rebuilds_.load(std::memory_order_relaxed);
}

LatencySummary EmbeddingServer::latency() const {
  LatencySummary s;
  s.count = served_.load(std::memory_order_relaxed);
  if (latency_hist_.count() == 0) return s;
  s.mean_us = latency_hist_.mean();
  s.max_us = latency_hist_.max();
  s.p50_us = latency_hist_.percentile(0.50);
  s.p95_us = latency_hist_.percentile(0.95);
  s.p99_us = latency_hist_.percentile(0.99);
  return s;
}

}  // namespace seqge::serve
