#include "serve/sharded_store.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "embedding/checkpoint.hpp"
#include "embedding/model.hpp"
#include "obs/metrics.hpp"

namespace seqge::serve {

namespace {

/// Global mirrors of the per-instance counters, summed across every
/// store in the process so one metrics dump covers publishing cost.
struct StoreMetrics {
  obs::Counter* rows_copied;
  obs::Counter* compactions;
  obs::Counter* full_publishes;
  obs::Counter* delta_publishes;
  obs::Counter* shards_swapped;
  obs::Gauge* delta_chain_depth;
  obs::Gauge* tombstoned_rows;
};

StoreMetrics& store_metrics() {
  static StoreMetrics m{
      obs::Registry::global().counter("seqge_store_rows_copied_total", {},
                                      "Embedding rows copied on publish"),
      obs::Registry::global().counter("seqge_store_compactions_total", {},
                                      "Shard compactions (full repacks)"),
      obs::Registry::global().counter("seqge_store_full_publishes_total", {},
                                      "Full-snapshot publications"),
      obs::Registry::global().counter("seqge_store_delta_publishes_total", {},
                                      "Delta publications"),
      obs::Registry::global().counter("seqge_store_shards_swapped_total", {},
                                      "Shard head RCU swaps"),
      obs::Registry::global().gauge(
          "seqge_store_delta_chain_depth", {},
          "Delta-chain depth of the most recently swapped shard"),
      obs::Registry::global().gauge(
          "seqge_store_tombstoned_rows", {},
          "Rows currently tombstoned (hidden from scans)"),
  };
  return m;
}

}  // namespace

ShardedEmbeddingStore::ShardedEmbeddingStore(Config cfg) : cfg_(cfg) {
  if (cfg_.num_shards == 0) {
    throw std::invalid_argument("ShardedEmbeddingStore: num_shards == 0");
  }
  if (cfg_.max_delta_chain == 0) cfg_.max_delta_chain = 1;
  heads_ = std::make_unique<Head[]>(cfg_.num_shards);
}

void ShardedEmbeddingStore::rebase_all(std::shared_ptr<const MatrixF> base,
                                       std::uint64_t version) {
  for (std::size_t s = 0; s < cfg_.num_shards; ++s) {
    auto snap = std::make_shared<ShardSnapshot>();
    snap->version = version;
    snap->base_version = version;
    snap->row_begin = static_cast<std::uint32_t>(layout_.begin(s));
    snap->dims = static_cast<std::uint32_t>(base->cols());
    const std::size_t rows = layout_.rows(s);
    snap->row_ptr.resize(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      snap->row_ptr[r] = base->row(snap->row_begin + r).data();
    }
    snap->buffers = {base};
    heads_[s].store(std::move(snap), std::memory_order_release);
    shards_swapped_.fetch_add(1, std::memory_order_relaxed);
    store_metrics().shards_swapped->add();
  }
  store_metrics().delta_chain_depth->set(0);
  // A full rebase serves every row again (fresh snapshots carry no
  // bitmap). Producers with live deletions republish the dead set right
  // after — see publish_tombstones' replace semantics.
  tombstoned_rows_.store(0, std::memory_order_relaxed);
  store_metrics().tombstoned_rows->set(0);
}

std::uint64_t ShardedEmbeddingStore::publish(MatrixF embedding,
                                             std::uint64_t walks_trained,
                                             std::string producer) {
  if (embedding.empty()) {
    throw std::invalid_argument(
        "ShardedEmbeddingStore::publish: empty embedding");
  }
  std::uint64_t assigned = 0;
  {
    std::lock_guard lock(publish_mutex_);
    if (layout_.num_rows == 0) {
      layout_.num_shards = cfg_.num_shards;
      layout_.num_rows = embedding.rows();
      layout_.rows_per_shard =
          (embedding.rows() + cfg_.num_shards - 1) / cfg_.num_shards;
      num_rows_.store(embedding.rows(), std::memory_order_release);
    } else if (embedding.rows() != layout_.num_rows) {
      throw std::invalid_argument(
          "ShardedEmbeddingStore::publish: row count changed after the "
          "first publish");
    }
    rows_copied_.fetch_add(embedding.rows(), std::memory_order_relaxed);
    full_publishes_.fetch_add(1, std::memory_order_relaxed);
    store_metrics().rows_copied->add(embedding.rows());
    store_metrics().full_publishes->add();
    assigned = version_.load(std::memory_order_relaxed) + 1;
    auto base = std::make_shared<const MatrixF>(std::move(embedding));
    rebase_all(std::move(base), assigned);
    walks_trained_.store(walks_trained, std::memory_order_release);
    producer_ = std::move(producer);
    version_.store(assigned, std::memory_order_release);
  }
  version_cv_.notify_all();
  return assigned;
}

std::shared_ptr<ShardSnapshot> ShardedEmbeddingStore::compact_shard(
    const ShardSnapshot& old_snap, std::uint64_t version,
    std::span<const std::uint32_t> local_touched, const MatrixF& rows,
    std::size_t rows_offset) {
  // Re-pack the whole shard into one contiguous buffer: current value
  // for untouched rows, the incoming delta for touched ones.
  const std::size_t n = old_snap.num_rows();
  const std::size_t dims = old_snap.dims;
  auto packed = std::make_shared<MatrixF>(n, dims);
  for (std::size_t r = 0; r < n; ++r) {
    auto src = old_snap.row(r);
    std::copy(src.begin(), src.end(), packed->row(r).begin());
  }
  for (std::size_t i = 0; i < local_touched.size(); ++i) {
    auto src = rows.row(rows_offset + i);
    std::copy(src.begin(), src.end(),
              packed->row(local_touched[i]).begin());
  }
  rows_copied_.fetch_add(n, std::memory_order_relaxed);
  compactions_.fetch_add(1, std::memory_order_relaxed);
  store_metrics().rows_copied->add(n);
  store_metrics().compactions->add();

  auto snap = std::make_shared<ShardSnapshot>();
  snap->version = version;
  snap->base_version = version;
  snap->row_begin = old_snap.row_begin;
  snap->dims = old_snap.dims;
  snap->row_ptr.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    snap->row_ptr[r] = packed->row(r).data();
  }
  snap->buffers = {std::move(packed)};
  snap->dead = old_snap.dead;  // compaction repacks rows, not visibility
  revive_rows(*snap, local_touched);
  return snap;
}

void ShardedEmbeddingStore::revive_rows(
    ShardSnapshot& snap, std::span<const std::uint32_t> local_touched) {
  if (snap.dead.empty()) return;
  std::uint64_t revived = 0;
  for (std::uint32_t l : local_touched) {
    if (snap.dead[l] != 0) {
      snap.dead[l] = 0;
      ++revived;
    }
  }
  if (revived != 0) {
    const auto now =
        tombstoned_rows_.fetch_sub(revived, std::memory_order_relaxed) -
        revived;
    store_metrics().tombstoned_rows->set(static_cast<std::int64_t>(now));
  }
  if (std::all_of(snap.dead.begin(), snap.dead.end(),
                  [](std::uint8_t b) { return b == 0; })) {
    snap.dead.clear();  // back to the cheap "no tombstones" shape
  }
}

std::uint64_t ShardedEmbeddingStore::publish_delta(
    std::span<const NodeId> touched, MatrixF rows,
    std::uint64_t walks_trained, std::string producer) {
  std::uint64_t assigned = 0;
  {
    std::lock_guard lock(publish_mutex_);
    if (layout_.num_rows == 0) {
      throw std::logic_error(
          "ShardedEmbeddingStore::publish_delta: no base published yet");
    }
    if (rows.rows() != touched.size()) {
      throw std::invalid_argument(
          "ShardedEmbeddingStore::publish_delta: touched/rows size "
          "mismatch");
    }
    for (std::size_t i = 0; i < touched.size(); ++i) {
      if (touched[i] >= layout_.num_rows ||
          (i > 0 && touched[i] <= touched[i - 1])) {
        throw std::invalid_argument(
            "ShardedEmbeddingStore::publish_delta: touched rows must be "
            "strictly ascending and in range");
      }
    }
    assigned = version_.load(std::memory_order_relaxed) + 1;
    delta_publishes_.fetch_add(1, std::memory_order_relaxed);
    store_metrics().delta_publishes->add();

    if (!touched.empty()) {
      const auto head0 = heads_[0].load(std::memory_order_relaxed);
      if (rows.cols() != head0->dims) {
        throw std::invalid_argument(
            "ShardedEmbeddingStore::publish_delta: dims mismatch");
      }
      rows_copied_.fetch_add(touched.size(), std::memory_order_relaxed);
      store_metrics().rows_copied->add(touched.size());
      // One shared buffer for the whole delta; every affected shard's
      // snapshot co-owns it and repoints its touched entries into it.
      auto delta = std::make_shared<const MatrixF>(std::move(rows));

      // `touched` is ascending, so each shard's rows form one
      // contiguous run [i, j).
      std::size_t i = 0;
      while (i < touched.size()) {
        const std::size_t s = layout_.shard_of(touched[i]);
        std::size_t j = i + 1;
        while (j < touched.size() && layout_.shard_of(touched[j]) == s) {
          ++j;
        }
        const auto old_snap = heads_[s].load(std::memory_order_relaxed);
        const auto begin = static_cast<NodeId>(layout_.begin(s));

        // Merge this publish's local rows into the cumulative
        // changed-since-base overlay (both ascending).
        std::vector<std::uint32_t> local(j - i);
        for (std::size_t t = i; t < j; ++t) {
          local[t - i] = static_cast<std::uint32_t>(touched[t] - begin);
        }
        std::vector<std::uint32_t> merged;
        merged.reserve(old_snap->changed_since_base.size() + local.size());
        std::set_union(old_snap->changed_since_base.begin(),
                       old_snap->changed_since_base.end(), local.begin(),
                       local.end(), std::back_inserter(merged));

        std::shared_ptr<ShardSnapshot> snap;
        // Cost-scheduled compaction: repack only once the appended
        // delta volume amortizes the O(shard) copy; the overlay and
        // chain tests are backstops (index-refresh cost and memory).
        const std::uint64_t appended =
            old_snap->delta_rows_since_base + local.size();
        const bool cost_amortized =
            cfg_.compact_cost_factor > 0.0 &&
            static_cast<double>(appended) >=
                cfg_.compact_cost_factor *
                    static_cast<double>(old_snap->num_rows());
        const bool overflow =
            cost_amortized ||
            old_snap->delta_chain() + 1 > cfg_.max_delta_chain ||
            static_cast<double>(merged.size()) >
                cfg_.max_overlay_fraction *
                    static_cast<double>(old_snap->num_rows());
        if (overflow) {
          snap = compact_shard(*old_snap, assigned, local, *delta, i);
        } else {
          snap = std::make_shared<ShardSnapshot>();
          snap->version = assigned;
          snap->base_version = old_snap->base_version;
          snap->row_begin = old_snap->row_begin;
          snap->dims = old_snap->dims;
          snap->row_ptr = old_snap->row_ptr;  // cheap pointer-table clone
          for (std::size_t t = 0; t < local.size(); ++t) {
            snap->row_ptr[local[t]] = delta->row(i + t).data();
          }
          snap->buffers = old_snap->buffers;
          snap->buffers.push_back(delta);
          snap->changed_since_base = std::move(merged);
          snap->delta_rows_since_base = appended;
          snap->dead = old_snap->dead;
          revive_rows(*snap, local);
        }
        const std::int64_t chain_depth =
            static_cast<std::int64_t>(snap->delta_chain());
        heads_[s].store(std::move(snap), std::memory_order_release);
        shards_swapped_.fetch_add(1, std::memory_order_relaxed);
        store_metrics().shards_swapped->add();
        store_metrics().delta_chain_depth->set(chain_depth);
        i = j;
      }
    }
    walks_trained_.store(walks_trained, std::memory_order_release);
    producer_ = std::move(producer);
    version_.store(assigned, std::memory_order_release);
  }
  version_cv_.notify_all();
  return assigned;
}

std::uint64_t ShardedEmbeddingStore::publish_tombstones(
    std::span<const NodeId> nodes, std::string producer) {
  std::uint64_t assigned = 0;
  {
    std::lock_guard lock(publish_mutex_);
    if (layout_.num_rows == 0) {
      throw std::logic_error(
          "ShardedEmbeddingStore::publish_tombstones: no base published "
          "yet");
    }
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i] >= layout_.num_rows ||
          (i > 0 && nodes[i] <= nodes[i - 1])) {
        throw std::invalid_argument(
            "ShardedEmbeddingStore::publish_tombstones: nodes must be "
            "strictly ascending and in range");
      }
    }
    assigned = version_.load(std::memory_order_relaxed) + 1;

    std::uint64_t total_dead = 0;
    std::size_t i = 0;  // cursor into `nodes` (ascending)
    for (std::size_t s = 0; s < cfg_.num_shards; ++s) {
      const auto begin = static_cast<NodeId>(layout_.begin(s));
      const auto end = static_cast<NodeId>(begin + layout_.rows(s));
      // This shard's new bitmap from the nodes in [begin, end).
      std::vector<std::uint8_t> dead;
      while (i < nodes.size() && nodes[i] < end) {
        if (dead.empty()) dead.resize(layout_.rows(s), 0);
        dead[nodes[i] - begin] = 1;
        ++total_dead;
        ++i;
      }
      const auto old_snap = heads_[s].load(std::memory_order_relaxed);
      // Replace semantics: empty-to-empty is a no-op; otherwise clone
      // the snapshot with only the bitmap swapped — zero rows copied,
      // base_version preserved, so incremental index refresh sees no
      // row changes.
      if (dead.empty() && old_snap->dead.empty()) continue;
      if (dead == old_snap->dead) continue;
      auto snap = std::make_shared<ShardSnapshot>(*old_snap);
      snap->version = assigned;
      snap->dead = std::move(dead);
      heads_[s].store(std::move(snap), std::memory_order_release);
      shards_swapped_.fetch_add(1, std::memory_order_relaxed);
      store_metrics().shards_swapped->add();
    }
    tombstoned_rows_.store(total_dead, std::memory_order_relaxed);
    store_metrics().tombstoned_rows->set(
        static_cast<std::int64_t>(total_dead));
    if (!producer.empty()) producer_ = std::move(producer);
    version_.store(assigned, std::memory_order_release);
  }
  version_cv_.notify_all();
  return assigned;
}

std::string ShardedEmbeddingStore::producer() const {
  std::lock_guard lock(publish_mutex_);
  return producer_;
}

void ShardedEmbeddingStore::on_snapshot(const EmbeddingModel& model,
                                        const TrainStats& stats) {
  publish(model.extract_embedding(), stats.num_walks, model.name());
}

void ShardedEmbeddingStore::on_delta(const EmbeddingModel& model,
                                     const TrainStats& stats,
                                     std::span<const NodeId> touched_rows) {
  // A near-full delta costs more than a full rebase (per-shard overlay
  // merges + compaction churn on top of the row copies), so past half
  // the rows just republish everything — which also resets every
  // shard's overlay and delta chain.
  if (version() == 0 || touched_rows.size() * 2 >= model.num_nodes()) {
    on_snapshot(model, stats);
    return;
  }
  MatrixF rows(touched_rows.size(), model.dims());
  model.extract_rows(touched_rows, rows);
  publish_delta(touched_rows, std::move(rows), stats.num_walks,
                model.name());
}

void ShardedEmbeddingStore::on_tombstone(std::span<const NodeId> nodes) {
  if (version() == 0) return;  // empty store serves nothing anyway
  publish_tombstones(nodes);
}

std::vector<std::shared_ptr<const ShardSnapshot>>
ShardedEmbeddingStore::view() const {
  std::vector<std::shared_ptr<const ShardSnapshot>> out;
  if (version() == 0) return out;
  out.reserve(cfg_.num_shards);
  for (std::size_t s = 0; s < cfg_.num_shards; ++s) out.push_back(shard(s));
  return out;
}

bool ShardedEmbeddingStore::wait_for_version(
    std::uint64_t v, std::chrono::milliseconds timeout) const {
  std::unique_lock lock(publish_mutex_);
  return version_cv_.wait_for(lock, timeout, [&] {
    return version_.load(std::memory_order_acquire) >= v;
  });
}

MatrixF ShardedEmbeddingStore::materialize() const {
  const auto shards = view();
  if (shards.empty()) {
    throw std::runtime_error(
        "ShardedEmbeddingStore::materialize: nothing published");
  }
  const std::size_t dims = shards.front()->dims;
  MatrixF out(num_rows(), dims);
  for (const auto& snap : shards) {
    for (std::size_t r = 0; r < snap->num_rows(); ++r) {
      auto src = snap->row(r);
      std::copy(src.begin(), src.end(),
                out.row(snap->row_begin + r).begin());
    }
  }
  return out;
}

void ShardedEmbeddingStore::save(std::ostream& os) const {
  write_checkpoint(os, materialize(), nullptr);
}

void ShardedEmbeddingStore::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw std::runtime_error("ShardedEmbeddingStore::save: cannot open " +
                             path);
  }
  save(os);
}

std::uint64_t ShardedEmbeddingStore::load(std::istream& is,
                                          std::string producer) {
  const CheckpointHeader h = read_checkpoint_header(is);
  MatrixF beta;
  MatrixF covariance;  // read-and-discard keeps the stream consumable
  read_checkpoint_payload(is, h, beta,
                          h.has_covariance ? &covariance : nullptr);
  return publish(std::move(beta), 0, std::move(producer));
}

std::uint64_t ShardedEmbeddingStore::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("ShardedEmbeddingStore::load: cannot open " +
                             path);
  }
  return load(is, path);
}

}  // namespace seqge::serve
