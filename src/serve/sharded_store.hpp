#pragma once
// Sharded, copy-on-write embedding store: the scaling successor to the
// single-snapshot EmbeddingStore (serve/embedding_store.hpp), which
// republishes the full n x dims matrix on every snapshot. Sequential
// OS-ELM training touches only O(walk + negatives) rows per insertion,
// so past a few million nodes the full copy dominates publish cost
// (ROADMAP: "Snapshot delta publishing", "Sharded EmbeddingStore").
//
// Design:
//  * The node range [0, n) is split into `num_shards` contiguous
//    ranges; each shard has its own RCU head —
//    std::atomic<std::shared_ptr<const ShardSnapshot>> — swapped
//    independently, so a publish only touches the shards whose rows
//    changed.
//  * A ShardSnapshot is immutable and row-granular copy-on-write: it
//    holds one `const float*` per local row plus shared ownership of
//    the buffers those pointers reference. A delta publish allocates
//    one compact buffer for the touched rows, clones the (cheap)
//    pointer table of each affected shard, and repoints only the
//    touched entries — every untouched row is shared with the previous
//    snapshot, so a publish deep-copies exactly the touched rows:
//    O(touched x dims) instead of O(n x dims).
//  * Compaction is scheduled by cost, off the common publish path: a
//    shard is re-packed into one contiguous buffer only once the delta
//    rows appended since its base amortize the O(shard) repack
//    (Config::compact_cost_factor), or its changed-row overlay exceeds
//    Config::max_overlay_fraction of the shard, or — as a memory
//    backstop — its buffer chain exceeds Config::max_delta_chain. The
//    common publish stays O(touched); the earlier eager chain-depth
//    trigger re-packed shards on nearly every publish at high cadence
//    (~90 compactions per 100 publishes at bench scale).
//
// Consistency contract (the sharded analogue of EmbeddingStore's):
//  * Readers acquire a shard head with one atomic load and never block
//    publishers. A ShardSnapshot is internally consistent: every row
//    reflects a state the shard actually passed through at
//    `ShardSnapshot::version`, and no row is ever torn.
//  * Store versions are strictly monotonic; a shard's head version only
//    moves forward. A multi-shard view() taken while a publisher runs
//    may mix shard versions (shard A at v, shard B at v+1) — each shard
//    is still internally consistent, and per-shard versions never go
//    backwards. Queries that fan out across shards therefore serve
//    bounded-staleness reads, which is the intended serving semantic.
//
// Implements SnapshotSink: on_delta(touched) republishes O(touched)
// rows via EmbeddingModel::extract_rows; on_snapshot (and the first
// publication into an empty store) publishes the full matrix. The
// unsharded EmbeddingStore remains the N = 1 special case for callers
// that want a single contiguous snapshot.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "embedding/trainer.hpp"
#include "linalg/matrix.hpp"

namespace seqge::serve {

/// How the node range maps onto shards: shard s owns the contiguous
/// local rows [begin(s), begin(s) + rows(s)). Fixed by the first
/// publish; later publishes must keep the same shape.
struct ShardLayout {
  std::size_t num_shards = 1;
  std::size_t num_rows = 0;
  std::size_t rows_per_shard = 0;  ///< ceil(num_rows / num_shards)

  [[nodiscard]] std::size_t shard_of(NodeId row) const noexcept {
    return static_cast<std::size_t>(row) / rows_per_shard;
  }
  [[nodiscard]] std::size_t begin(std::size_t s) const noexcept {
    return std::min(num_rows, s * rows_per_shard);
  }
  [[nodiscard]] std::size_t rows(std::size_t s) const noexcept {
    return std::min(num_rows, (s + 1) * rows_per_shard) - begin(s);
  }
};

/// One immutable published version of one shard. Rows are exposed
/// through a pointer table so a delta publish can share every untouched
/// row with its predecessor; `buffers` keeps every referenced buffer
/// alive for as long as any reader holds the snapshot.
struct ShardSnapshot {
  std::uint64_t version = 0;       ///< store version of this shard's last change
  std::uint64_t base_version = 0;  ///< store version of the last rebase
                                   ///< (full publish or compaction)
  std::uint32_t row_begin = 0;     ///< global id of local row 0
  std::uint32_t dims = 0;

  /// local row -> row data (dims floats). Pointers stay valid for the
  /// snapshot's lifetime (backed by `buffers`).
  std::vector<const float*> row_ptr;
  std::vector<std::shared_ptr<const MatrixF>> buffers;

  /// Delta rows appended onto this shard since `base_version`, counted
  /// with multiplicity (a row re-published twice counts twice) — the
  /// cost-model input for compaction scheduling: once this reaches
  /// compact_cost_factor x shard rows, the O(shard) repack is amortized
  /// by the delta volume it absorbs.
  std::uint64_t delta_rows_since_base = 0;

  /// Local rows changed since `base_version`, ascending and unique
  /// (empty for a fresh base). A superset of the rows changed since any
  /// intermediate version >= base_version — what incremental index
  /// maintenance (ShardedQueryEngine) diffs against.
  std::vector<std::uint32_t> changed_since_base;

  /// Tombstone bitmap: dead[local] != 0 marks a row whose node was
  /// deleted from the graph — query engines must skip it. Empty (the
  /// common, insert-only case) means no tombstones; when non-empty its
  /// size is num_rows(). Row data stays in place (and in checkpoints):
  /// only visibility changes, so a later revive is again a bitmap flip.
  std::vector<std::uint8_t> dead;

  [[nodiscard]] std::size_t num_rows() const noexcept {
    return row_ptr.size();
  }
  [[nodiscard]] std::span<const float> row(std::size_t local) const noexcept {
    return {row_ptr[local], dims};
  }
  [[nodiscard]] bool tombstoned(std::size_t local) const noexcept {
    return !dead.empty() && dead[local] != 0;
  }
  /// Delta buffers stacked on the base (compaction trigger input).
  [[nodiscard]] std::size_t delta_chain() const noexcept {
    return buffers.empty() ? 0 : buffers.size() - 1;
  }
};

class ShardedEmbeddingStore final : public SnapshotSink {
 public:
  struct Config {
    std::size_t num_shards = 1;
    /// Memory backstop: compact a shard once its buffer chain exceeds
    /// this many deltas regardless of cost. High by default — the cost
    /// trigger below is meant to fire long before this does.
    std::size_t max_delta_chain = 512;
    /// Compact once a shard's changed-row overlay exceeds this fraction
    /// of its rows (bounds incremental index-refresh work).
    double max_overlay_fraction = 0.5;
    /// Cost trigger: compact once the delta rows appended since the
    /// shard's base reach this multiple of the shard's rows — the
    /// O(shard) repack is then amortized across at least that much
    /// published delta volume. <= 0 disables the cost trigger (chain
    /// and overlay backstops still apply).
    double compact_cost_factor = 1.0;
  };

  explicit ShardedEmbeddingStore(Config cfg);
  explicit ShardedEmbeddingStore(std::size_t num_shards = 1)
      : ShardedEmbeddingStore(Config{num_shards}) {}
  ShardedEmbeddingStore(const ShardedEmbeddingStore&) = delete;
  ShardedEmbeddingStore& operator=(const ShardedEmbeddingStore&) = delete;

  // --- publishing ---------------------------------------------------------
  /// Full publish: takes ownership of the matrix, rebases every shard
  /// onto it (one shared buffer, no further copying). The first publish
  /// fixes the layout; later publishes must match it. Publishers are
  /// serialized; readers never block. Returns the assigned version.
  std::uint64_t publish(MatrixF embedding, std::uint64_t walks_trained = 0,
                        std::string producer = {});

  /// Delta publish: row `touched[i]` takes the value rows.row(i); every
  /// other row is carried over by reference. `touched` must be strictly
  /// ascending, in range, with rows.rows() == touched.size() and
  /// rows.cols() == dims. Only shards containing touched rows get a new
  /// snapshot (untouched shard heads are not even swapped). Cost —
  /// and rows_copied() growth — is O(touched x dims) plus any amortized
  /// compaction. Throws std::logic_error before the first full publish.
  std::uint64_t publish_delta(std::span<const NodeId> touched, MatrixF rows,
                              std::uint64_t walks_trained = 0,
                              std::string producer = {});

  /// Tombstone publish (replace semantics): `nodes` — strictly
  /// ascending, unique, in range — becomes the complete set of dead
  /// rows; every other row is (re)served. Copies ZERO embedding rows:
  /// each affected shard's snapshot is cloned with only its `dead`
  /// bitmap replaced (row pointers, buffers, overlay, and base_version
  /// are shared/carried), so readers pick up visibility at the next
  /// head load and incremental index refresh sees no row changes.
  /// Shards whose bitmap is unchanged-empty are not swapped. A delta
  /// publish revives any touched row (clears its bit); a full publish
  /// clears every bit — producers with live deletions must republish
  /// the dead set after full publishes (the StreamTrainer does, every
  /// flush). Throws std::logic_error before the first full publish.
  std::uint64_t publish_tombstones(std::span<const NodeId> nodes,
                                   std::string producer = {});

  // --- SnapshotSink -------------------------------------------------------
  /// Full republish via model.extract_embedding().
  void on_snapshot(const EmbeddingModel& model,
                   const TrainStats& stats) override;
  /// Delta republish via model.extract_rows(touched) — O(touched).
  /// Falls back to a full publish when the store is empty (no base
  /// yet) or the delta covers half the rows or more (at that size a
  /// full rebase is cheaper and resets every shard's overlay).
  void on_delta(const EmbeddingModel& model, const TrainStats& stats,
                std::span<const NodeId> touched_rows) override;
  /// publish_tombstones(nodes); ignored before the first publish (an
  /// empty store serves nothing anyway).
  void on_tombstone(std::span<const NodeId> nodes) override;

  // --- reads (lock-free) --------------------------------------------------
  [[nodiscard]] std::size_t num_shards() const noexcept {
    return cfg_.num_shards;
  }
  /// Rows across all shards (0 before the first publish).
  [[nodiscard]] std::size_t num_rows() const noexcept {
    return num_rows_.load(std::memory_order_acquire);
  }
  /// The node-range partitioning — the single source of truth for
  /// node -> shard mapping (ShardedQueryEngine routes through it).
  /// Call only after observing version() > 0 (the acquire there pairs
  /// with the first publish's release, making layout_ visible); fixed
  /// for the store's lifetime after the first publish.
  [[nodiscard]] ShardLayout layout() const noexcept {
    const std::size_t rows = num_rows();  // acquire first
    ShardLayout copy = layout_;
    copy.num_rows = rows;
    return copy;
  }
  /// Head snapshot of one shard (nullptr before the first publish). One
  /// atomic load; the caller's reference keeps it alive.
  [[nodiscard]] std::shared_ptr<const ShardSnapshot> shard(
      std::size_t s) const noexcept {
    return heads_[s].load(std::memory_order_acquire);
  }
  /// All shard heads (empty before the first publish). Taken shard by
  /// shard, so versions may skew across shards under concurrent
  /// publishing — see the consistency contract above.
  [[nodiscard]] std::vector<std::shared_ptr<const ShardSnapshot>> view()
      const;

  /// Latest assigned store version (strictly monotonic, 0 = empty).
  [[nodiscard]] std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }
  /// Producer progress reported with the latest publish.
  [[nodiscard]] std::uint64_t walks_trained() const noexcept {
    return walks_trained_.load(std::memory_order_acquire);
  }
  /// Producer name reported with the latest publish (for observability).
  [[nodiscard]] std::string producer() const;
  /// Block until version() >= v; false on timeout.
  bool wait_for_version(std::uint64_t v,
                        std::chrono::milliseconds timeout) const;

  // --- instrumentation (cumulative, relaxed reads) ------------------------
  /// Embedding rows deep-copied by publishes: the full matrix per
  /// publish()/on_snapshot, the touched rows per delta, plus shard rows
  /// re-packed by compactions. The publish-cost metric the delta
  /// regression test and bench_serving gate on.
  [[nodiscard]] std::uint64_t rows_copied() const noexcept {
    return rows_copied_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t shards_swapped() const noexcept {
    return shards_swapped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t compactions() const noexcept {
    return compactions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t full_publishes() const noexcept {
    return full_publishes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t delta_publishes() const noexcept {
    return delta_publishes_.load(std::memory_order_relaxed);
  }
  /// Rows currently tombstoned across all shards (after the latest
  /// tombstone/delta/full publish).
  [[nodiscard]] std::uint64_t tombstoned_rows() const noexcept {
    return tombstoned_rows_.load(std::memory_order_relaxed);
  }

  // --- checkpoint persistence ---------------------------------------------
  /// Contiguous copy of the current per-shard heads. Intended for
  /// checkpointing a quiescent store; under concurrent publishing the
  /// copy may mix shard versions (each shard internally consistent).
  [[nodiscard]] MatrixF materialize() const;
  /// Write materialize() in the binary checkpoint format
  /// (embedding/checkpoint.hpp) — loadable by EmbeddingStore, the CPU
  /// models, and the FPGA accelerator alike. Throws if empty.
  void save(std::ostream& os) const;
  void save(const std::string& path) const;
  /// Read a checkpoint and publish it as the next (full) version.
  std::uint64_t load(std::istream& is, std::string producer = "checkpoint");
  std::uint64_t load(const std::string& path);

 private:
  using Head = std::atomic<std::shared_ptr<const ShardSnapshot>>;

  /// Rebase every shard onto `base` at `version` (publish lock held).
  void rebase_all(std::shared_ptr<const MatrixF> base, std::uint64_t version);
  /// Compacted successor of `old_snap` with `fresh` applied on top.
  std::shared_ptr<ShardSnapshot> compact_shard(
      const ShardSnapshot& old_snap, std::uint64_t version,
      std::span<const std::uint32_t> local_touched, const MatrixF& rows,
      std::size_t rows_offset);
  /// Clear the dead bits of republished rows (a delta to a tombstoned
  /// row revives it) and keep the global tombstone count in sync.
  void revive_rows(ShardSnapshot& snap,
                   std::span<const std::uint32_t> local_touched);

  Config cfg_;
  ShardLayout layout_;  // written once under publish_mutex_ (first publish)
  std::unique_ptr<Head[]> heads_;
  std::atomic<std::size_t> num_rows_{0};
  std::atomic<std::uint64_t> version_{0};
  std::atomic<std::uint64_t> walks_trained_{0};
  std::string producer_;  // guarded by publish_mutex_

  std::atomic<std::uint64_t> rows_copied_{0};
  std::atomic<std::uint64_t> shards_swapped_{0};
  std::atomic<std::uint64_t> compactions_{0};
  std::atomic<std::uint64_t> full_publishes_{0};
  std::atomic<std::uint64_t> delta_publishes_{0};
  std::atomic<std::uint64_t> tombstoned_rows_{0};

  // Serializes publishers and backs wait_for_version; readers never
  // take this mutex.
  mutable std::mutex publish_mutex_;
  mutable std::condition_variable version_cv_;
};

}  // namespace seqge::serve
