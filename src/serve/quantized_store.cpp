#include "serve/quantized_store.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace seqge::serve {

namespace {

// Symmetric scale for one block of values: max|x| / 127, optionally
// rounded up to the next power of two (the round-up keeps codes inside
// [-127, 127]). An all-zero block gets scale 0 and all-zero codes.
float block_scale(std::span<const float> x, bool pow2) {
  float max_abs = 0.0f;
  for (float v : x) max_abs = std::max(max_abs, std::abs(v));
  if (max_abs == 0.0f) return 0.0f;
  float s = max_abs / 127.0f;
  if (pow2) s = std::exp2(std::ceil(std::log2(s)));
  return s;
}

// Shared exponent e for one block in bfp mode: the smallest e with
// 2^e >= max|x| / 127, so codes stay inside [-127, 127]. All-zero
// blocks get the sentinel (and all-zero codes).
std::int16_t block_exp(std::span<const float> x) {
  float max_abs = 0.0f;
  for (float v : x) max_abs = std::max(max_abs, std::abs(v));
  if (max_abs == 0.0f) return QuantizedRowStore::kZeroExp;
  int e = 0;
  const float m = std::frexp(max_abs / 127.0f, &e);  // s = m * 2^e
  if (m == 0.5f) --e;  // exact power of two: no round-up needed
  return static_cast<std::int16_t>(e);
}

// BFP mantissas: code = round(x / 2^e), exact exponent arithmetic via
// ldexp (immune to 2^|e| overflowing float for denormal-ish blocks).
void quantize_block_bfp(std::span<const float> x, std::int16_t e,
                        std::int8_t* codes) {
  if (e == QuantizedRowStore::kZeroExp) {
    std::fill(codes, codes + x.size(), std::int8_t{0});
    return;
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double q = std::round(std::ldexp(static_cast<double>(x[i]), -e));
    codes[i] = static_cast<std::int8_t>(std::clamp(q, -127.0, 127.0));
  }
}

void quantize_block(std::span<const float> x, float scale,
                    std::int8_t* codes) {
  if (scale == 0.0f) {
    std::fill(codes, codes + x.size(), std::int8_t{0});
    return;
  }
  const float inv = 1.0f / scale;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float q = std::round(x[i] * inv);
    codes[i] = static_cast<std::int8_t>(
        std::clamp(q, -127.0f, 127.0f));
  }
}

}  // namespace

QuantizedRowStore::QuantizedRowStore(const MatrixF& rows,
                                     const QuantConfig& cfg)
    : cfg_(cfg), rows_(rows.rows()), dims_(rows.cols()) {
  block_dims_ = cfg_.block == 0 ? dims_ : std::min(cfg_.block, dims_);
  if (block_dims_ == 0) block_dims_ = 1;
  blocks_ = (dims_ + block_dims_ - 1) / block_dims_;
  codes_.resize(rows_ * dims_);
  if (cfg_.bfp) {
    exps_.resize(rows_ * blocks_);
  } else {
    scales_.resize(rows_ * blocks_);
  }
  for (std::size_t r = 0; r < rows_; ++r) requantize_row(r, rows.row(r));
}

void QuantizedRowStore::requantize_row(std::size_t r,
                                       std::span<const float> row) {
  assert(r < rows_ && row.size() == dims_);
  std::int8_t* codes = codes_.data() + r * dims_;
  if (cfg_.bfp) {
    std::int16_t* exps = exps_.data() + r * blocks_;
    for (std::size_t b = 0; b < blocks_; ++b) {
      const std::size_t off = b * block_dims_;
      const std::size_t len = std::min(block_dims_, dims_ - off);
      const auto x = row.subspan(off, len);
      exps[b] = block_exp(x);
      quantize_block_bfp(x, exps[b], codes + off);
    }
    return;
  }
  float* scales = scales_.data() + r * blocks_;
  for (std::size_t b = 0; b < blocks_; ++b) {
    const std::size_t off = b * block_dims_;
    const std::size_t len = std::min(block_dims_, dims_ - off);
    const auto x = row.subspan(off, len);
    scales[b] = block_scale(x, cfg_.pow2_scales);
    quantize_block(x, scales[b], codes + off);
  }
}

QuantizedRowStore::QuantizedQuery QuantizedRowStore::quantize_query(
    std::span<const float> q, const QuantConfig& cfg) {
  const std::size_t dims = q.size();
  std::size_t bd = cfg.block == 0 ? dims : std::min(cfg.block, dims);
  if (bd == 0) bd = 1;
  const std::size_t blocks = dims == 0 ? 0 : (dims + bd - 1) / bd;
  QuantizedQuery out;
  out.codes.resize(dims);
  if (cfg.bfp) {
    out.exps.resize(blocks);
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t off = b * bd;
      const std::size_t len = std::min(bd, dims - off);
      const auto x = q.subspan(off, len);
      out.exps[b] = block_exp(x);
      quantize_block_bfp(x, out.exps[b], out.codes.data() + off);
    }
    return out;
  }
  out.scales.resize(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t off = b * bd;
    const std::size_t len = std::min(bd, dims - off);
    const auto x = q.subspan(off, len);
    out.scales[b] = block_scale(x, cfg.pow2_scales);
    quantize_block(x, out.scales[b], out.codes.data() + off);
  }
  return out;
}

float QuantizedRowStore::score(std::size_t r,
                               const QuantizedQuery& q) const {
  assert(r < rows_ && q.codes.size() == dims_);
  const std::int8_t* codes = codes_.data() + r * dims_;
  if (cfg_.bfp) {
    assert(q.exps.size() == blocks_);
    const std::int16_t* exps = exps_.data() + r * blocks_;
    // One scan block at a time; a zero block on either side yields
    // d == 0 (its codes are all zero), so the sentinel exponents never
    // reach ldexp with a nonzero mantissa.
    if (blocks_ == 1) {
      const std::int32_t d = simd::dot_i8(codes, q.codes.data(), dims_);
      return static_cast<float>(
          std::ldexp(static_cast<double>(d), exps[0] + q.exps[0]));
    }
    double acc = 0.0;
    for (std::size_t b = 0; b < blocks_; ++b) {
      const std::size_t off = b * block_dims_;
      const std::size_t len = std::min(block_dims_, dims_ - off);
      const std::int32_t d =
          simd::dot_i8(codes + off, q.codes.data() + off, len);
      if (d != 0) acc += std::ldexp(static_cast<double>(d), exps[b] + q.exps[b]);
    }
    return static_cast<float>(acc);
  }
  assert(q.scales.size() == blocks_);
  const float* scales = scales_.data() + r * blocks_;
  float acc = 0.0f;
  for (std::size_t b = 0; b < blocks_; ++b) {
    const std::size_t off = b * block_dims_;
    const std::size_t len = std::min(block_dims_, dims_ - off);
    const std::int32_t d =
        simd::dot_i8(codes + off, q.codes.data() + off, len);
    acc += static_cast<float>(d) * scales[b] * q.scales[b];
  }
  return acc;
}

void QuantizedRowStore::dequantize_row(std::size_t r,
                                       std::span<float> out) const {
  assert(r < rows_ && out.size() == dims_);
  const std::int8_t* codes = codes_.data() + r * dims_;
  if (cfg_.bfp) {
    const std::int16_t* exps = exps_.data() + r * blocks_;
    for (std::size_t i = 0; i < dims_; ++i) {
      const std::int16_t e = exps[i / block_dims_];
      out[i] = e == kZeroExp
                   ? 0.0f
                   : static_cast<float>(
                         std::ldexp(static_cast<double>(codes[i]), e));
    }
    return;
  }
  const float* scales = scales_.data() + r * blocks_;
  for (std::size_t i = 0; i < dims_; ++i) {
    out[i] = static_cast<float>(codes[i]) * scales[i / block_dims_];
  }
}

}  // namespace seqge::serve
