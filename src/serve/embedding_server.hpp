#pragma once
// Multi-threaded embedding server: the request loop that turns a
// snapshot store + query engine into something a front-end can call
// while training runs. Requests (top-k / edge-score) enter a
// BoundedQueue (util/bounded_queue.hpp — the same primitive that backs
// the training pipeline); a pool of worker threads answers them against
// the *latest* store version, rebuilding the per-version SearchEngine
// exactly once per published version. Each response carries the
// version it was answered from, so clients can observe freshness, and
// each request's queue+service latency is recorded for the percentile
// summary.
//
// Two store backends route through the same worker pool:
//  * EmbeddingStore — one contiguous snapshot per version; each new
//    version builds a fresh QueryEngine (full IVF re-cluster).
//  * ShardedEmbeddingStore — per-shard copy-on-write snapshots; each
//    new version builds a ShardedQueryEngine *incrementally from the
//    previous engine*: untouched shards are shared, changed shards
//    re-assign only rows that moved (serve/sharded_query.hpp), so
//    high-cadence delta publishing does not trigger full re-clustering.
//
// Threading guarantees: submission (topk/score) is safe from any
// number of client threads; responses are fulfilled exactly once; the
// versions observed by any single client thread's responses are
// monotonically non-decreasing (the store's versions are strictly
// monotonic and workers never install an older engine over a newer
// one).
//
// Shutdown is a graceful drain: close() stops admission, workers finish
// everything already queued (every accepted future is fulfilled), then
// join. The destructor drains implicitly.

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/query_engine.hpp"
#include "serve/sharded_store.hpp"
#include "util/bounded_queue.hpp"

namespace seqge::serve {

class ShardedQueryEngine;

struct ServerConfig {
  std::size_t threads = 2;          ///< worker pool size (>= 1)
  std::size_t queue_capacity = 1024;
  /// Engine built for each new snapshot version. Brute force by default;
  /// switch to kIvf for sub-linear search on large stores. With a
  /// sharded store this is the per-shard index configuration.
  IndexConfig index{};
  Similarity similarity = Similarity::kCosine;
  /// Sharded stores only: centroid-affinity decay past which an
  /// incrementally refreshed row re-runs its nearest-IVF-cell scan
  /// (ShardedIndexConfig::reassign_threshold).
  float ivf_reassign_threshold = 0.05f;
  /// Sharded stores only: threads per query for the per-shard fan-out
  /// (ShardedIndexConfig::scan_threads; 0/1 = sequential scan).
  std::size_t scan_threads = 0;
  /// Unused since the latency ring was replaced by an obs::Histogram
  /// (fixed-size regardless of request count); kept so existing
  /// call sites keep compiling.
  std::size_t latency_window = 1 << 16;
};

struct TopKResult {
  std::uint64_t version = 0;  ///< snapshot the answer came from
  std::vector<Neighbor> neighbors;
};

struct ScoreResult {
  std::uint64_t version = 0;
  double score = 0.0;
};

/// Answer to a batched top-k request: one neighbor list per requested
/// node, all answered against the same snapshot version. Batches take
/// one queue slot and one worker wake-up however many nodes they carry,
/// which is what makes them the coalescing target for the network
/// front-end (src/net/server.cpp merges concurrent small wire requests
/// into these).
struct TopKBatchResult {
  std::uint64_t version = 0;
  std::vector<std::vector<Neighbor>> results;  ///< one entry per node
};

/// Answer to a batched edge-score request (same contract as above).
struct ScoreBatchResult {
  std::uint64_t version = 0;
  std::vector<double> scores;  ///< one entry per (u, v) pair
};

/// Latency summary, microseconds. `count` covers every answered
/// request; mean/percentiles/max come from a per-server obs::Histogram
/// over all requests (constant memory however long the server runs;
/// percentile accuracy is bounded by the histogram's factor-2 bucket
/// widths). Subject to the obs kill switch: with SEQGE_OBS=0 only
/// `count` is populated.
struct LatencySummary {
  std::size_t count = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

class EmbeddingServer {
 public:
  /// The store is shared with the producer (trainer) and must outlive
  /// the server. Workers start immediately; requests submitted before
  /// the first publish fail with std::runtime_error.
  EmbeddingServer(std::shared_ptr<const EmbeddingStore> store,
                  ServerConfig cfg = {});
  /// Sharded-store variant: workers answer through a ShardedQueryEngine
  /// (fan-out/merge; incremental per-shard index refresh on each new
  /// version).
  EmbeddingServer(std::shared_ptr<const ShardedEmbeddingStore> store,
                  ServerConfig cfg = {});
  ~EmbeddingServer();

  EmbeddingServer(const EmbeddingServer&) = delete;
  EmbeddingServer& operator=(const EmbeddingServer&) = delete;

  /// Enqueue a top-k neighbors query for node u. Throws
  /// std::runtime_error if the server is draining.
  std::future<TopKResult> topk(NodeId u, std::size_t k);

  /// Enqueue a link-prediction score query for candidate edge (u, v).
  std::future<ScoreResult> score(NodeId u, NodeId v,
                                 EdgeScore kind = EdgeScore::kCosine);

  /// Enqueue a batch of top-k queries answered against one snapshot.
  /// One queue slot regardless of batch size.
  std::future<TopKBatchResult> topk_batch(std::vector<NodeId> nodes,
                                          std::size_t k);

  /// Enqueue a batch of edge-score queries answered against one
  /// snapshot.
  std::future<ScoreBatchResult> score_batch(
      std::vector<std::pair<NodeId, NodeId>> pairs,
      EdgeScore kind = EdgeScore::kCosine);

  /// Non-blocking admission variants: return std::nullopt immediately
  /// when the queue is full (or the server is draining) instead of
  /// blocking or throwing — the shed path the network front-end answers
  /// with OVERLOADED. The blocking calls above are unchanged.
  std::optional<std::future<TopKResult>> try_topk(NodeId u, std::size_t k);
  std::optional<std::future<ScoreResult>> try_score(
      NodeId u, NodeId v, EdgeScore kind = EdgeScore::kCosine);
  std::optional<std::future<TopKBatchResult>> try_topk_batch(
      std::vector<NodeId> nodes, std::size_t k);
  std::optional<std::future<ScoreBatchResult>> try_score_batch(
      std::vector<std::pair<NodeId, NodeId>> pairs,
      EdgeScore kind = EdgeScore::kCosine);

  /// Stop admission, answer everything already queued, join the
  /// workers. Idempotent; also run by the destructor.
  void drain();

  /// Bounded drain for clean SIGTERM handling: stop admission, then
  /// wait up to `timeout` for the queued + in-flight requests to be
  /// answered. Returns 0 once fully drained (workers joined), or the
  /// number of requests still pending when the timeout expired (workers
  /// left running — every accepted promise is still fulfilled
  /// eventually, and the destructor joins unboundedly).
  std::size_t drain_for(std::chrono::milliseconds timeout);

  [[nodiscard]] bool draining() const noexcept { return queue_.closed(); }

  /// Requests answered so far (successfully or with an error); batch
  /// requests count once per member.
  [[nodiscard]] std::uint64_t queries_served() const;
  /// Snapshot versions the server has built engines for.
  [[nodiscard]] std::uint64_t engine_rebuilds() const;
  /// Percentile summary of request latency (enqueue -> response set).
  [[nodiscard]] LatencySummary latency() const;
  /// Requests queued but not yet picked up by a worker — the capacity-
  /// planning signal the net front-end exports as a gauge.
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::size_t queue_capacity() const noexcept {
    return queue_.capacity();
  }
  /// Latest version the backing store has published (0 = none yet).
  [[nodiscard]] std::uint64_t store_version() const;

 private:
  /// Shared init: exactly one of the stores is non-null.
  EmbeddingServer(std::shared_ptr<const EmbeddingStore> store,
                  std::shared_ptr<const ShardedEmbeddingStore> sharded,
                  ServerConfig cfg);

  enum class RequestType { kTopK, kScore, kTopKBatch, kScoreBatch };
  struct Request {
    RequestType type = RequestType::kTopK;
    NodeId u = 0;
    NodeId v = 0;
    std::size_t k = 10;
    EdgeScore score_kind = EdgeScore::kCosine;
    std::vector<NodeId> nodes;                        ///< kTopKBatch
    std::vector<std::pair<NodeId, NodeId>> pairs;     ///< kScoreBatch
    std::chrono::steady_clock::time_point enqueued{};
    std::promise<TopKResult> topk_promise;
    std::promise<ScoreResult> score_promise;
    std::promise<TopKBatchResult> topk_batch_promise;
    std::promise<ScoreBatchResult> score_batch_promise;
  };

  void worker_loop();
  void answer(Request& req);
  /// Push with blocking or shed semantics; updates admission metrics
  /// and the in-flight count. Returns false when shed (try_push failed
  /// or, in blocking mode, the queue closed).
  bool submit(Request&& req, bool blocking);
  /// Current engine, rebuilt (by exactly one worker) when the store has
  /// published a newer version than the cached engine was built for.
  std::shared_ptr<const SearchEngine> engine();
  void record(const Request& req, std::size_t weight);

  // Exactly one of the two stores is set.
  std::shared_ptr<const EmbeddingStore> store_;
  std::shared_ptr<const ShardedEmbeddingStore> sharded_store_;
  ServerConfig cfg_;
  BoundedQueue<Request> queue_;

  // Engine cache: read with one atomic load on the hot path; rebuilds
  // serialize on rebuild_mutex_ with a double-check so concurrent
  // workers noticing the same new version build it once.
  std::atomic<std::shared_ptr<const SearchEngine>> engine_{nullptr};
  std::mutex rebuild_mutex_;
  std::atomic<std::uint64_t> rebuilds_{0};

  // Per-server latency histogram behind LatencySummary (multiple
  // servers in one process must not share samples); every observation
  // is mirrored into the global seqge_serve_request_us histogram.
  obs::Histogram latency_hist_;
  std::atomic<std::uint64_t> served_{0};
  // Accepted-minus-answered requests (queued + in-flight), the drain
  // progress signal drain_for polls. Signed: the submitter increments
  // before the push and decrements on a failed push, so a racing
  // worker can transiently drive it below the true count but never
  // hide an accepted request.
  std::atomic<std::int64_t> pending_{0};

  std::vector<std::thread> workers_;
};

}  // namespace seqge::serve
