#pragma once
// One-vs-rest multinomial logistic regression trained by SGD — the
// downstream task used to score embeddings (Sec. 4.3). One binary
// logistic classifier per class over the embedding features; prediction
// is the argmax of the per-class scores.

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace seqge {

struct LogisticRegressionConfig {
  std::size_t epochs = 100;
  double learning_rate = 0.1;
  double l2 = 1e-4;
  /// Standardize features to zero mean / unit variance over the training
  /// set before fitting (embedding scales vary wildly with mu).
  bool standardize = true;
  std::uint64_t seed = 7;
};

class OneVsRestLogisticRegression {
 public:
  explicit OneVsRestLogisticRegression(
      LogisticRegressionConfig cfg = LogisticRegressionConfig{})
      : cfg_(cfg) {}

  /// Fit on features.row(i) for i in train_indices with labels[i].
  void fit(const MatrixF& features, std::span<const std::uint32_t> labels,
           std::span<const std::uint32_t> train_indices,
           std::size_t num_classes);

  /// Predict the class of one feature row.
  [[nodiscard]] std::uint32_t predict(std::span<const float> x) const;

  /// Predict for a set of row indices of `features`.
  [[nodiscard]] std::vector<std::uint32_t> predict_rows(
      const MatrixF& features,
      std::span<const std::uint32_t> indices) const;

  [[nodiscard]] std::size_t num_classes() const noexcept {
    return weights_.rows();
  }

 private:
  void standardize_row(std::span<const float> x,
                       std::span<double> out) const;

  LogisticRegressionConfig cfg_;
  Matrix<double> weights_;  // num_classes x dims
  std::vector<double> bias_;
  std::vector<double> feat_mean_, feat_inv_std_;
};

}  // namespace seqge
