#include "eval/link_prediction.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "linalg/kernels.hpp"

namespace seqge {

double score_edge(const MatrixF& embedding, NodeId u, NodeId v,
                  EdgeScore kind) {
  return score_edge(embedding.row(u), embedding.row(v), kind);
}

double score_edge(std::span<const float> eu, std::span<const float> ev,
                  EdgeScore kind) {
  switch (kind) {
    case EdgeScore::kDot:
      return dot<float>(eu, ev);
    case EdgeScore::kCosine:
      return cosine_similarity(eu, ev);
    case EdgeScore::kHadamardL2: {
      // Sum of element-wise products of normalized vectors; reduces to
      // cosine but kept separate for API symmetry with the literature's
      // Hadamard operator.
      double s = 0.0;
      const double nu = l2_norm(eu), nv = l2_norm(ev);
      if (nu == 0.0 || nv == 0.0) return 0.0;
      for (std::size_t d = 0; d < eu.size(); ++d) {
        s += (eu[d] / nu) * (ev[d] / nv);
      }
      return s;
    }
  }
  return 0.0;
}

std::vector<Edge> sample_non_edges(const Graph& g, std::size_t count,
                                   Rng& rng) {
  const std::size_t n = g.num_nodes();
  if (n < 2) throw std::invalid_argument("sample_non_edges: graph too small");
  const std::size_t max_pairs = n * (n - 1) / 2;
  if (count > max_pairs - g.num_edges()) {
    throw std::invalid_argument("sample_non_edges: not enough non-edges");
  }
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(count * 2);
  std::vector<Edge> out;
  out.reserve(count);
  while (out.size() < count) {
    auto u = static_cast<NodeId>(rng.bounded(n));
    auto v = static_cast<NodeId>(rng.bounded(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (g.has_edge(u, v)) continue;
    const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    if (!seen.insert(key).second) continue;
    out.push_back({u, v, 1.0f});
  }
  return out;
}

double roc_auc(std::span<const double> positive_scores,
               std::span<const double> negative_scores) {
  if (positive_scores.empty() || negative_scores.empty()) {
    throw std::invalid_argument("roc_auc: empty score list");
  }
  // Rank-sum (Mann-Whitney U) formulation: sort negatives, then for each
  // positive count how many negatives it beats (binary search), ties 1/2.
  std::vector<double> negs(negative_scores.begin(), negative_scores.end());
  std::sort(negs.begin(), negs.end());
  double wins = 0.0;
  for (double p : positive_scores) {
    const auto lo = std::lower_bound(negs.begin(), negs.end(), p);
    const auto hi = std::upper_bound(negs.begin(), negs.end(), p);
    wins += static_cast<double>(lo - negs.begin()) +
            0.5 * static_cast<double>(hi - lo);
  }
  return wins / (static_cast<double>(positive_scores.size()) *
                 static_cast<double>(negs.size()));
}

double link_prediction_auc(const MatrixF& embedding,
                           const Graph& observed_graph,
                           std::span<const Edge> held_out, EdgeScore kind,
                           Rng& rng) {
  if (held_out.empty()) {
    throw std::invalid_argument("link_prediction_auc: no held-out edges");
  }
  const std::vector<Edge> negatives =
      sample_non_edges(observed_graph, held_out.size(), rng);
  std::vector<double> pos_scores, neg_scores;
  pos_scores.reserve(held_out.size());
  neg_scores.reserve(negatives.size());
  for (const Edge& e : held_out) {
    pos_scores.push_back(score_edge(embedding, e.src, e.dst, kind));
  }
  for (const Edge& e : negatives) {
    neg_scores.push_back(score_edge(embedding, e.src, e.dst, kind));
  }
  return roc_auc(pos_scores, neg_scores);
}

}  // namespace seqge
