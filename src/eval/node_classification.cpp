#include "eval/node_classification.hpp"

#include "eval/split.hpp"

namespace seqge {

F1Scores evaluate_embedding(const MatrixF& embedding,
                            std::span<const std::uint32_t> labels,
                            std::size_t num_classes,
                            const ClassificationConfig& cfg,
                            std::uint64_t seed) {
  Rng rng(seed);
  TrainTestSplit split =
      stratified_split(labels, num_classes, cfg.test_fraction, rng);

  LogisticRegressionConfig lr_cfg = cfg.lr;
  lr_cfg.seed = seed ^ 0xC1A551F1ED5EEDULL;
  OneVsRestLogisticRegression clf(lr_cfg);
  clf.fit(embedding, labels, split.train_indices, num_classes);

  const auto predicted = clf.predict_rows(embedding, split.test_indices);
  std::vector<std::uint32_t> actual;
  actual.reserve(split.test_indices.size());
  for (std::uint32_t idx : split.test_indices) actual.push_back(labels[idx]);
  return f1_scores(predicted, actual, num_classes);
}

double mean_micro_f1(const MatrixF& embedding,
                     std::span<const std::uint32_t> labels,
                     std::size_t num_classes,
                     const ClassificationConfig& cfg, std::size_t trials,
                     std::uint64_t seed) {
  double sum = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    sum += evaluate_embedding(embedding, labels, num_classes, cfg,
                              seed + t * 1000003ULL)
               .micro;
  }
  return sum / static_cast<double>(trials);
}

}  // namespace seqge
