#include "eval/split.hpp"

#include <stdexcept>

namespace seqge {

TrainTestSplit stratified_split(std::span<const std::uint32_t> labels,
                                std::size_t num_classes,
                                double test_fraction, Rng& rng) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    throw std::invalid_argument("stratified_split: bad test_fraction");
  }
  std::vector<std::vector<std::uint32_t>> by_class(num_classes);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] >= num_classes) {
      throw std::out_of_range("stratified_split: label out of range");
    }
    by_class[labels[i]].push_back(static_cast<std::uint32_t>(i));
  }

  TrainTestSplit split;
  for (auto& members : by_class) {
    for (std::size_t i = members.size(); i > 1; --i) {
      std::swap(members[i - 1], members[rng.bounded(i)]);
    }
    std::size_t n_test = static_cast<std::size_t>(
        static_cast<double>(members.size()) * test_fraction);
    if (members.size() >= 2 && n_test == 0) n_test = 1;
    for (std::size_t i = 0; i < members.size(); ++i) {
      (i < n_test ? split.test_indices : split.train_indices)
          .push_back(members[i]);
    }
  }
  return split;
}

}  // namespace seqge
