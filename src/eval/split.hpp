#pragma once
// Stratified train/test split for node classification: the paper uses
// 90% train / 10% test (Sec. 4.3). Stratification keeps every class
// represented in both partitions even for small or imbalanced classes.

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace seqge {

struct TrainTestSplit {
  std::vector<std::uint32_t> train_indices;
  std::vector<std::uint32_t> test_indices;
};

/// Split sample indices [0, labels.size()) so that ~`test_fraction` of
/// each class lands in the test set (at least 1 test sample per class
/// with >= 2 members).
[[nodiscard]] TrainTestSplit stratified_split(
    std::span<const std::uint32_t> labels, std::size_t num_classes,
    double test_fraction, Rng& rng);

}  // namespace seqge
