#include "eval/logistic_regression.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/kernels.hpp"

namespace seqge {

void OneVsRestLogisticRegression::standardize_row(
    std::span<const float> x, std::span<double> out) const {
  for (std::size_t d = 0; d < x.size(); ++d) {
    double v = x[d];
    if (!feat_mean_.empty()) {
      v = (v - feat_mean_[d]) * feat_inv_std_[d];
    }
    out[d] = v;
  }
}

void OneVsRestLogisticRegression::fit(
    const MatrixF& features, std::span<const std::uint32_t> labels,
    std::span<const std::uint32_t> train_indices, std::size_t num_classes) {
  if (train_indices.empty()) {
    throw std::invalid_argument("LogisticRegression::fit: no training data");
  }
  const std::size_t dims = features.cols();
  weights_ = Matrix<double>(num_classes, dims);
  bias_.assign(num_classes, 0.0);

  if (cfg_.standardize) {
    feat_mean_.assign(dims, 0.0);
    feat_inv_std_.assign(dims, 1.0);
    for (std::uint32_t idx : train_indices) {
      auto row = features.row(idx);
      for (std::size_t d = 0; d < dims; ++d) feat_mean_[d] += row[d];
    }
    const double inv_n = 1.0 / static_cast<double>(train_indices.size());
    for (std::size_t d = 0; d < dims; ++d) feat_mean_[d] *= inv_n;
    std::vector<double> var(dims, 0.0);
    for (std::uint32_t idx : train_indices) {
      auto row = features.row(idx);
      for (std::size_t d = 0; d < dims; ++d) {
        const double c = row[d] - feat_mean_[d];
        var[d] += c * c;
      }
    }
    for (std::size_t d = 0; d < dims; ++d) {
      const double sd = std::sqrt(var[d] * inv_n);
      feat_inv_std_[d] = sd > 1e-12 ? 1.0 / sd : 1.0;
    }
  } else {
    feat_mean_.clear();
    feat_inv_std_.clear();
  }

  Rng rng(cfg_.seed);
  std::vector<std::uint32_t> order(train_indices.begin(),
                                   train_indices.end());
  std::vector<double> x(dims);

  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    // 1/t learning-rate decay keeps late epochs from oscillating.
    const double lr =
        cfg_.learning_rate / (1.0 + 0.02 * static_cast<double>(epoch));
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.bounded(i)]);
    }
    for (std::uint32_t idx : order) {
      standardize_row(features.row(idx), x);
      const std::uint32_t y = labels[idx];
      for (std::size_t c = 0; c < num_classes; ++c) {
        auto w = weights_.row(c);
        const double t = (c == y) ? 1.0 : 0.0;
        const double score = sigmoid(dot<double>(w, x) + bias_[c]);
        const double g = score - t;
        for (std::size_t d = 0; d < dims; ++d) {
          w[d] -= lr * (g * x[d] + cfg_.l2 * w[d]);
        }
        bias_[c] -= lr * g;
      }
    }
  }
}

std::uint32_t OneVsRestLogisticRegression::predict(
    std::span<const float> x) const {
  std::vector<double> xs(x.size());
  standardize_row(x, xs);
  std::uint32_t best = 0;
  double best_score = -1e300;
  for (std::size_t c = 0; c < weights_.rows(); ++c) {
    const double s = dot<double>(weights_.row(c), std::span<const double>(xs)) +
                     bias_[c];
    if (s > best_score) {
      best_score = s;
      best = static_cast<std::uint32_t>(c);
    }
  }
  return best;
}

std::vector<std::uint32_t> OneVsRestLogisticRegression::predict_rows(
    const MatrixF& features, std::span<const std::uint32_t> indices) const {
  std::vector<std::uint32_t> out;
  out.reserve(indices.size());
  for (std::uint32_t idx : indices) out.push_back(predict(features.row(idx)));
  return out;
}

}  // namespace seqge
