#pragma once
// Link prediction evaluation for dynamic-graph embeddings (the task the
// dynamic-node2vec related work [4][5] of the paper evaluates). Held-out
// edges are scored against an equal number of sampled non-edges using a
// similarity of the endpoint embeddings; quality is ROC-AUC — the
// probability that a random true edge outscores a random non-edge.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace seqge {

enum class EdgeScore {
  kDot,       ///< u . v
  kCosine,    ///< u . v / (|u| |v|)
  kHadamardL2 ///< -|u (.) v - mean|… simple Hadamard-norm heuristic
};

/// Score one candidate edge from its endpoint embedding rows. The
/// span overload is the primitive (serving engines that do not hold a
/// contiguous matrix — e.g. the sharded store's per-shard row tables —
/// score through it); the matrix overload delegates to it, so the two
/// are bit-identical.
[[nodiscard]] double score_edge(std::span<const float> eu,
                                std::span<const float> ev, EdgeScore kind);
[[nodiscard]] double score_edge(const MatrixF& embedding, NodeId u,
                                NodeId v, EdgeScore kind);

/// Sample `count` distinct non-edges of `g` (uniform over node pairs,
/// rejecting existing edges and self-loops).
[[nodiscard]] std::vector<Edge> sample_non_edges(const Graph& g,
                                                 std::size_t count,
                                                 Rng& rng);

/// ROC-AUC of positives-vs-negatives score lists (ties count 1/2).
[[nodiscard]] double roc_auc(std::span<const double> positive_scores,
                             std::span<const double> negative_scores);

/// End-to-end: AUC of `held_out` edges vs an equal number of sampled
/// non-edges under the given scoring.
[[nodiscard]] double link_prediction_auc(const MatrixF& embedding,
                                         const Graph& observed_graph,
                                         std::span<const Edge> held_out,
                                         EdgeScore kind, Rng& rng);

}  // namespace seqge
