#pragma once
// End-to-end embedding quality harness: 90/10 stratified split ->
// one-vs-rest logistic regression -> micro-F1 on the held-out 10%
// (exactly the paper's Sec. 4.3 protocol). evaluate_embedding runs one
// trial; mean_f1_over_trials averages several, as the paper averages
// three.

#include <cstdint>
#include <span>

#include "eval/logistic_regression.hpp"
#include "eval/metrics.hpp"
#include "linalg/matrix.hpp"

namespace seqge {

struct ClassificationConfig {
  double test_fraction = 0.1;
  LogisticRegressionConfig lr{};
};

/// One split + fit + score trial.
[[nodiscard]] F1Scores evaluate_embedding(
    const MatrixF& embedding, std::span<const std::uint32_t> labels,
    std::size_t num_classes, const ClassificationConfig& cfg,
    std::uint64_t seed);

/// Mean micro-F1 over `trials` runs with distinct split/classifier seeds.
[[nodiscard]] double mean_micro_f1(const MatrixF& embedding,
                                   std::span<const std::uint32_t> labels,
                                   std::size_t num_classes,
                                   const ClassificationConfig& cfg,
                                   std::size_t trials, std::uint64_t seed);

}  // namespace seqge
