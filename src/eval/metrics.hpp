#pragma once
// Classification metrics. The paper reports the micro-averaged F1 score
// of a one-vs-rest logistic regression on the learned embedding
// (Sec. 4.3); macro-F1 is also provided for completeness.

#include <cstdint>
#include <span>
#include <vector>

namespace seqge {

struct F1Scores {
  double micro = 0.0;
  double macro = 0.0;
  double accuracy = 0.0;
};

/// Compute F1 scores from predicted and true labels (both in
/// [0, num_classes)). For single-label multiclass problems micro-F1
/// equals accuracy; both are computed from the confusion counts so the
/// identity is verified by tests rather than assumed.
[[nodiscard]] F1Scores f1_scores(std::span<const std::uint32_t> predicted,
                                 std::span<const std::uint32_t> actual,
                                 std::size_t num_classes);

}  // namespace seqge
