#include "eval/metrics.hpp"

#include <stdexcept>

namespace seqge {

F1Scores f1_scores(std::span<const std::uint32_t> predicted,
                   std::span<const std::uint32_t> actual,
                   std::size_t num_classes) {
  if (predicted.size() != actual.size() || predicted.empty()) {
    throw std::invalid_argument("f1_scores: size mismatch or empty");
  }
  std::vector<std::uint64_t> tp(num_classes, 0), fp(num_classes, 0),
      fn(num_classes, 0);
  std::uint64_t correct = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const std::uint32_t p = predicted[i];
    const std::uint32_t a = actual[i];
    if (p >= num_classes || a >= num_classes) {
      throw std::out_of_range("f1_scores: label out of range");
    }
    if (p == a) {
      ++tp[p];
      ++correct;
    } else {
      ++fp[p];
      ++fn[a];
    }
  }

  F1Scores out;
  out.accuracy =
      static_cast<double>(correct) / static_cast<double>(predicted.size());

  std::uint64_t tp_sum = 0, fp_sum = 0, fn_sum = 0;
  double macro_sum = 0.0;
  for (std::size_t c = 0; c < num_classes; ++c) {
    tp_sum += tp[c];
    fp_sum += fp[c];
    fn_sum += fn[c];
    const double denom =
        static_cast<double>(2 * tp[c] + fp[c] + fn[c]);
    macro_sum += denom > 0.0 ? 2.0 * static_cast<double>(tp[c]) / denom : 0.0;
  }
  const double micro_denom = static_cast<double>(2 * tp_sum + fp_sum + fn_sum);
  out.micro = micro_denom > 0.0
                  ? 2.0 * static_cast<double>(tp_sum) / micro_denom
                  : 0.0;
  out.macro = macro_sum / static_cast<double>(num_classes);
  return out;
}

}  // namespace seqge
