#include "graph/dynamic_graph.hpp"

#include <algorithm>

namespace seqge {

DynamicGraph DynamicGraph::from_graph(const Graph& g) {
  DynamicGraph dg(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto nbrs = g.neighbors(u);
    auto ws = g.weights(u);
    dg.adjacency_[u].assign(nbrs.begin(), nbrs.end());
    dg.weights_[u].assign(ws.begin(), ws.end());
  }
  dg.num_edges_ = g.num_edges();
  return dg;
}

bool DynamicGraph::has_edge(NodeId u, NodeId v) const noexcept {
  const auto& nbrs = adjacency_[u];
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

float DynamicGraph::edge_weight(NodeId u, NodeId v) const noexcept {
  const auto& nbrs = adjacency_[u];
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return 0.0f;
  return weights_[u][static_cast<std::size_t>(it - nbrs.begin())];
}

double DynamicGraph::weighted_degree(NodeId u) const noexcept {
  double s = 0.0;
  for (float w : weights_[u]) s += w;
  return s;
}

void DynamicGraph::insert_arc(NodeId u, NodeId v, float w) {
  auto& nbrs = adjacency_[u];
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  const auto pos = static_cast<std::size_t>(it - nbrs.begin());
  nbrs.insert(it, v);
  weights_[u].insert(weights_[u].begin() + static_cast<std::ptrdiff_t>(pos),
                     w);
}

bool DynamicGraph::add_edge(NodeId u, NodeId v, float weight) {
  if (u == v || u >= num_nodes() || v >= num_nodes()) return false;
  if (has_edge(u, v)) return false;
  insert_arc(u, v, weight);
  insert_arc(v, u, weight);
  ++num_edges_;
  return true;
}

void DynamicGraph::erase_arc(NodeId u, NodeId v) {
  auto& nbrs = adjacency_[u];
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  const auto pos = static_cast<std::size_t>(it - nbrs.begin());
  nbrs.erase(it);
  weights_[u].erase(weights_[u].begin() +
                    static_cast<std::ptrdiff_t>(pos));
}

bool DynamicGraph::remove_edge(NodeId u, NodeId v) {
  if (u == v || u >= num_nodes() || v >= num_nodes()) return false;
  if (!has_edge(u, v)) return false;
  erase_arc(u, v);
  erase_arc(v, u);
  --num_edges_;
  return true;
}

Graph DynamicGraph::to_graph() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  for (NodeId u = 0; u < num_nodes(); ++u) {
    const auto& nbrs = adjacency_[u];
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (u < nbrs[i]) edges.push_back({u, nbrs[i], weights_[u][i]});
    }
  }
  return Graph::from_edges(num_nodes(), edges);
}

}  // namespace seqge
