#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "sampling/alias_table.hpp"
#include "util/rng.hpp"

namespace seqge {

namespace {

constexpr std::uint64_t edge_key(NodeId a, NodeId b) noexcept {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

LabeledGraph generate_dcsbm(const SbmConfig& config) {
  const std::size_t n = config.num_nodes;
  const std::size_t k = config.num_classes;
  if (n < 2 || k < 1 || k > n) {
    throw std::invalid_argument("generate_dcsbm: bad node/class counts");
  }
  Rng rng(config.seed);

  // Contiguous, roughly equal block assignment. Labels are the blocks.
  std::vector<std::uint32_t> labels(n);
  std::vector<std::vector<NodeId>> block_members(k);
  for (std::size_t i = 0; i < n; ++i) {
    const auto b = static_cast<std::uint32_t>(i * k / n);
    labels[i] = b;
    block_members[b].push_back(static_cast<NodeId>(i));
  }

  // Heavy-tailed degree propensities theta_i (Pareto with exponent
  // `degree_exponent`, capped) normalized per block.
  std::vector<double> theta(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform();
    const double t =
        std::pow(1.0 - u, -1.0 / (config.degree_exponent - 1.0));
    theta[i] = std::min(t, config.max_propensity_ratio);
  }

  // Per-block alias table over theta for O(1) endpoint draws.
  std::vector<AliasTable> block_alias(k);
  std::vector<double> block_mass(k, 0.0);
  for (std::size_t b = 0; b < k; ++b) {
    std::vector<double> w(block_members[b].size());
    for (std::size_t j = 0; j < w.size(); ++j) {
      w[j] = theta[block_members[b][j]];
      block_mass[b] += w[j];
    }
    block_alias[b].build(w);
  }

  // Expected fraction of within-block edges given assortativity lambda:
  // mass_in = lambda * sum_b s_b^2, mass_out = sum_{b!=c} s_b s_c.
  double mass_in = 0.0, total_share = 0.0;
  std::vector<double> share(k);
  for (std::size_t b = 0; b < k; ++b) {
    share[b] = static_cast<double>(block_members[b].size()) /
               static_cast<double>(n);
    mass_in += share[b] * share[b];
    total_share += share[b];
  }
  const double mass_out = total_share * total_share - mass_in;
  const double f_in = config.assortativity * mass_in /
                      (config.assortativity * mass_in + mass_out);

  // Block-pair choice distributions.
  std::vector<double> in_block_w(k);
  for (std::size_t b = 0; b < k; ++b) in_block_w[b] = share[b] * share[b];
  AliasTable in_block_alias(in_block_w);
  AliasTable block_by_share(share);

  std::unordered_set<std::uint64_t> seen;
  seen.reserve(config.target_edges * 2);
  std::vector<Edge> edges;
  edges.reserve(config.target_edges);

  const std::size_t max_attempts = config.target_edges * 50 + 1000;
  std::size_t attempts = 0;
  while (edges.size() < config.target_edges && attempts < max_attempts) {
    ++attempts;
    NodeId u, v;
    if (rng.uniform() < f_in) {
      const std::uint32_t b = in_block_alias.sample(rng);
      const auto& members = block_members[b];
      if (members.size() < 2) continue;
      u = members[block_alias[b].sample(rng)];
      v = members[block_alias[b].sample(rng)];
    } else {
      const std::uint32_t b = block_by_share.sample(rng);
      std::uint32_t c = block_by_share.sample(rng);
      if (b == c) continue;
      u = block_members[b][block_alias[b].sample(rng)];
      v = block_members[c][block_alias[c].sample(rng)];
    }
    if (u == v) continue;
    if (!seen.insert(edge_key(u, v)).second) continue;
    edges.push_back({u, v, 1.0f});
  }

  // Degree floor: attach isolated nodes to a same-block peer (or any
  // other node when the block is a singleton).
  std::vector<std::uint32_t> deg(n, 0);
  for (const Edge& e : edges) {
    ++deg[e.src];
    ++deg[e.dst];
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (deg[i] != 0) continue;
    const auto& members = block_members[labels[i]];
    NodeId peer = static_cast<NodeId>(i);
    for (int tries = 0; tries < 64 && peer == static_cast<NodeId>(i);
         ++tries) {
      peer = members.size() > 1
                 ? members[rng.bounded(members.size())]
                 : static_cast<NodeId>(rng.bounded(n));
    }
    if (peer == static_cast<NodeId>(i)) continue;  // 1-node graph corner
    if (seen.insert(edge_key(static_cast<NodeId>(i), peer)).second) {
      edges.push_back({static_cast<NodeId>(i), peer, 1.0f});
      ++deg[i];
      ++deg[peer];
    }
  }

  // Degree-floor patching can overshoot the edge target; trim surplus
  // edges whose removal keeps both endpoints at degree >= 1 so the twin
  // matches its spec (Table 1 counts) exactly where possible.
  if (edges.size() > config.target_edges) {
    for (std::size_t i = edges.size(); i > 1; --i) {
      std::swap(edges[i - 1], edges[rng.bounded(i)]);
    }
    std::vector<Edge> kept;
    kept.reserve(config.target_edges);
    std::size_t surplus = edges.size() - config.target_edges;
    for (const Edge& e : edges) {
      if (surplus > 0 && deg[e.src] >= 2 && deg[e.dst] >= 2) {
        --deg[e.src];
        --deg[e.dst];
        --surplus;
        continue;
      }
      kept.push_back(e);
    }
    edges = std::move(kept);
  }

  LabeledGraph out;
  out.graph = Graph::from_edges(n, edges);
  out.labels = std::move(labels);
  out.num_classes = k;
  out.name = "dcsbm";
  return out;
}

LabeledGraph make_karate_club() {
  // Zachary (1977). Faction labels per the canonical split (node 0 =
  // instructor's faction, node 33 = administrator's faction).
  static constexpr std::pair<NodeId, NodeId> kEdges[] = {
      {0, 1},   {0, 2},   {0, 3},   {0, 4},   {0, 5},   {0, 6},   {0, 7},
      {0, 8},   {0, 10},  {0, 11},  {0, 12},  {0, 13},  {0, 17},  {0, 19},
      {0, 21},  {0, 31},  {1, 2},   {1, 3},   {1, 7},   {1, 13},  {1, 17},
      {1, 19},  {1, 21},  {1, 30},  {2, 3},   {2, 7},   {2, 8},   {2, 9},
      {2, 13},  {2, 27},  {2, 28},  {2, 32},  {3, 7},   {3, 12},  {3, 13},
      {4, 6},   {4, 10},  {5, 6},   {5, 10},  {5, 16},  {6, 16},  {8, 30},
      {8, 32},  {8, 33},  {9, 33},  {13, 33}, {14, 32}, {14, 33}, {15, 32},
      {15, 33}, {18, 32}, {18, 33}, {19, 33}, {20, 32}, {20, 33}, {22, 32},
      {22, 33}, {23, 25}, {23, 27}, {23, 29}, {23, 32}, {23, 33}, {24, 25},
      {24, 27}, {24, 31}, {25, 31}, {26, 29}, {26, 33}, {27, 33}, {28, 31},
      {28, 33}, {29, 32}, {29, 33}, {30, 32}, {30, 33}, {31, 32}, {31, 33},
      {32, 33}};
  static constexpr std::uint32_t kLabels[34] = {
      0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 1, 1, 0,
      0, 1, 0, 1, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1};

  std::vector<Edge> edges;
  edges.reserve(std::size(kEdges));
  for (auto [a, b] : kEdges) edges.push_back({a, b, 1.0f});

  LabeledGraph out;
  out.graph = Graph::from_edges(34, edges);
  out.labels.assign(std::begin(kLabels), std::end(kLabels));
  out.num_classes = 2;
  out.name = "karate";
  return out;
}

Graph make_ring(std::size_t num_nodes, std::size_t k) {
  if (num_nodes < 3) throw std::invalid_argument("make_ring: need >= 3 nodes");
  std::vector<Edge> edges;
  const std::size_t half = std::max<std::size_t>(1, k / 2);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    for (std::size_t d = 1; d <= half; ++d) {
      edges.push_back({static_cast<NodeId>(i),
                       static_cast<NodeId>((i + d) % num_nodes), 1.0f});
    }
  }
  return Graph::from_edges(num_nodes, edges);
}

Graph make_erdos_renyi(std::size_t num_nodes, std::size_t num_edges,
                       std::uint64_t seed) {
  const std::size_t max_edges = num_nodes * (num_nodes - 1) / 2;
  if (num_edges > max_edges) {
    throw std::invalid_argument("make_erdos_renyi: too many edges");
  }
  Rng rng(seed);
  std::unordered_set<std::uint64_t> seen;
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  while (edges.size() < num_edges) {
    const auto u = static_cast<NodeId>(rng.bounded(num_nodes));
    const auto v = static_cast<NodeId>(rng.bounded(num_nodes));
    if (u == v) continue;
    if (!seen.insert(edge_key(u, v)).second) continue;
    edges.push_back({u, v, 1.0f});
  }
  return Graph::from_edges(num_nodes, edges);
}

Graph make_barabasi_albert(std::size_t num_nodes,
                           std::size_t edges_per_node, std::uint64_t seed) {
  const std::size_t m = edges_per_node;
  if (m == 0 || num_nodes < m + 2) {
    throw std::invalid_argument(
        "make_barabasi_albert: need edges_per_node >= 1 and "
        "num_nodes >= edges_per_node + 2");
  }
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(num_nodes * m);
  // `endpoints` holds every edge endpoint once; sampling a uniform entry
  // is sampling a node with probability proportional to its degree.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * num_nodes * m);

  const std::size_t core = m + 1;
  for (std::size_t u = 0; u < core; ++u) {
    for (std::size_t v = u + 1; v < core; ++v) {
      edges.push_back({static_cast<NodeId>(u), static_cast<NodeId>(v), 1.0f});
      endpoints.push_back(static_cast<NodeId>(u));
      endpoints.push_back(static_cast<NodeId>(v));
    }
  }

  std::vector<NodeId> targets;
  targets.reserve(m);
  for (std::size_t u = core; u < num_nodes; ++u) {
    targets.clear();
    while (targets.size() < m) {
      const NodeId t = endpoints[rng.bounded(endpoints.size())];
      if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (NodeId t : targets) {
      edges.push_back({static_cast<NodeId>(u), t, 1.0f});
      endpoints.push_back(static_cast<NodeId>(u));
      endpoints.push_back(t);
    }
  }
  return Graph::from_edges(num_nodes, edges);
}

}  // namespace seqge
