#include "graph/spanning_forest.hpp"

#include <algorithm>

#include "graph/components.hpp"

namespace seqge {

ForestSplit split_spanning_forest(const Graph& g, Rng& rng) {
  std::vector<Edge> edges = g.edge_list();
  // Fisher-Yates with our RNG (std::shuffle's distribution is
  // implementation-defined; we want cross-platform reproducibility).
  for (std::size_t i = edges.size(); i > 1; --i) {
    std::swap(edges[i - 1], edges[rng.bounded(i)]);
  }

  ForestSplit split;
  UnionFind uf(g.num_nodes());
  for (const Edge& e : edges) {
    if (uf.unite(e.src, e.dst)) {
      split.forest_edges.push_back(e);
    } else {
      split.removed_edges.push_back(e);
    }
  }
  return split;
}

}  // namespace seqge
