#include "graph/stats.hpp"

#include <algorithm>
#include <limits>

#include "graph/components.hpp"

namespace seqge {

GraphStats compute_stats(const Graph& g) {
  GraphStats s;
  s.num_nodes = g.num_nodes();
  s.num_edges = g.num_edges();
  s.min_degree = std::numeric_limits<std::size_t>::max();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const std::size_t d = g.degree(u);
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
  }
  if (g.num_nodes() == 0) s.min_degree = 0;
  s.mean_degree = g.num_nodes() == 0
                      ? 0.0
                      : 2.0 * static_cast<double>(g.num_edges()) /
                            static_cast<double>(g.num_nodes());
  s.num_components = count_components(g);
  return s;
}

GraphStats compute_stats(const LabeledGraph& lg) {
  GraphStats s = compute_stats(lg.graph);
  if (!lg.labels.empty() && lg.graph.num_edges() > 0) {
    std::size_t same = 0;
    const auto edges = lg.graph.edge_list();
    for (const Edge& e : edges) {
      if (lg.labels[e.src] == lg.labels[e.dst]) ++same;
    }
    s.label_homophily =
        static_cast<double>(same) / static_cast<double>(edges.size());
  }
  return s;
}

}  // namespace seqge
