#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace seqge {

Graph Graph::from_edges(std::size_t num_nodes, std::span<const Edge> edges,
                        bool undirected) {
  // Collect directed arcs (both directions for undirected input).
  struct Arc {
    NodeId src, dst;
    float w;
  };
  std::vector<Arc> arcs;
  arcs.reserve(edges.size() * (undirected ? 2 : 1));
  for (const Edge& e : edges) {
    if (e.src >= num_nodes || e.dst >= num_nodes) {
      throw std::out_of_range("Graph::from_edges: node id out of range");
    }
    if (e.src == e.dst) continue;  // self-loops break the d_tx logic
    arcs.push_back({e.src, e.dst, e.weight});
    if (undirected) arcs.push_back({e.dst, e.src, e.weight});
  }
  std::sort(arcs.begin(), arcs.end(), [](const Arc& a, const Arc& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });

  Graph g;
  g.offsets_.assign(num_nodes + 1, 0);
  g.adjacency_.reserve(arcs.size());
  g.weights_.reserve(arcs.size());

  for (std::size_t i = 0; i < arcs.size();) {
    const Arc& a = arcs[i];
    float w = 0.0f;
    std::size_t j = i;
    // Merge duplicates (parallel edges) by summing weights.
    while (j < arcs.size() && arcs[j].src == a.src && arcs[j].dst == a.dst) {
      w += arcs[j].w;
      ++j;
    }
    g.adjacency_.push_back(a.dst);
    g.weights_.push_back(w);
    ++g.offsets_[a.src + 1];
    i = j;
  }
  for (std::size_t u = 0; u < num_nodes; ++u) {
    g.offsets_[u + 1] += g.offsets_[u];
  }
  g.num_edges_ = undirected ? g.adjacency_.size() / 2 : g.adjacency_.size();
  return g;
}

bool Graph::has_edge(NodeId u, NodeId v) const noexcept {
  auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

float Graph::edge_weight(NodeId u, NodeId v) const noexcept {
  auto nbrs = neighbors(u);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return 0.0f;
  return weights(u)[static_cast<std::size_t>(it - nbrs.begin())];
}

double Graph::weighted_degree(NodeId u) const noexcept {
  double s = 0.0;
  for (float w : weights(u)) s += w;
  return s;
}

std::vector<Edge> Graph::edge_list() const {
  std::vector<Edge> out;
  out.reserve(num_edges_);
  for (NodeId u = 0; u < num_nodes(); ++u) {
    auto nbrs = neighbors(u);
    auto ws = weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (u < nbrs[i]) out.push_back({u, nbrs[i], ws[i]});
    }
  }
  return out;
}

}  // namespace seqge
