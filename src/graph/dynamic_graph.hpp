#pragma once
// Mutable adjacency-list graph supporting incremental edge insertion —
// the substrate for the paper's "seq" scenario, where edges removed down
// to a spanning forest are re-inserted one at a time and a sequential
// training step runs after every insertion (Sec. 4.3.2).
//
// Adjacency lists are kept sorted so the walker's has_edge() is
// O(log deg); insertion is O(deg) which is negligible at the paper's
// graph sizes relative to the walk + training cost per insertion.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace seqge {

class DynamicGraph {
 public:
  explicit DynamicGraph(std::size_t num_nodes)
      : adjacency_(num_nodes), weights_(num_nodes) {}

  /// Seed from an existing static graph (e.g. the spanning forest).
  static DynamicGraph from_graph(const Graph& g);

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return adjacency_.size();
  }
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }

  [[nodiscard]] std::size_t degree(NodeId u) const noexcept {
    return adjacency_[u].size();
  }
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const noexcept {
    return adjacency_[u];
  }
  [[nodiscard]] std::span<const float> weights(NodeId u) const noexcept {
    return weights_[u];
  }
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;
  [[nodiscard]] float edge_weight(NodeId u, NodeId v) const noexcept;
  [[nodiscard]] double weighted_degree(NodeId u) const noexcept;

  /// Insert undirected edge (u, v). Returns false (no-op) when the edge
  /// already exists or u == v.
  bool add_edge(NodeId u, NodeId v, float weight = 1.0f);

  /// Remove undirected edge (u, v). Returns false (no-op) when the edge
  /// does not exist or u == v. O(deg), mirroring add_edge.
  bool remove_edge(NodeId u, NodeId v);

  /// Snapshot to an immutable CSR graph.
  [[nodiscard]] Graph to_graph() const;

 private:
  void insert_arc(NodeId u, NodeId v, float w);
  void erase_arc(NodeId u, NodeId v);

  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<std::vector<float>> weights_;
  std::size_t num_edges_ = 0;
};

}  // namespace seqge
