#pragma once
// Builds the "seq" scenario's initial graph: a spanning forest of the
// full graph with exactly the same connected components, plus the list
// of removed edges to be streamed back in (Sec. 4.3.2: "we remove edges
// from an entire graph so that the initial graph becomes a forest
// without changing the number of connected components").

#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace seqge {

struct ForestSplit {
  /// Edges forming the spanning forest (n - #components edges).
  std::vector<Edge> forest_edges;
  /// The removed edges, in the randomized order they will be re-inserted.
  std::vector<Edge> removed_edges;
};

/// Randomized Kruskal-style split: shuffle the edge list, accept edges
/// that merge union-find sets into the forest, everything else becomes a
/// removed edge. The shuffle makes each trial's insertion stream differ,
/// matching the paper's averaging over three trials.
[[nodiscard]] ForestSplit split_spanning_forest(const Graph& g, Rng& rng);

}  // namespace seqge
