#pragma once
// Registry of the paper's evaluation datasets (Table 1) as DC-SBM
// synthetic twins with matched node/edge/class counts:
//
//   Cora                          2,708 nodes    5,429 edges   7 classes
//   Amazon Photo ("ampt")         7,650 nodes  143,663 edges   8 classes
//   Amazon Electronics Computers 13,752 nodes  287,209 edges  10 classes
//
// `scale` < 1 shrinks node and edge counts proportionally (min 64 nodes)
// so the full benchmark suite can run on small CI machines; the bench
// harness prints the effective sizes it used.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/generators.hpp"

namespace seqge {

enum class DatasetId { kCora, kAmazonPhoto, kAmazonComputers };

struct DatasetSpec {
  DatasetId id;
  std::string name;        // paper's short name
  std::size_t num_nodes;
  std::size_t num_edges;
  std::size_t num_classes;
};

/// Specs for the three paper datasets, in paper order.
[[nodiscard]] const std::vector<DatasetSpec>& dataset_specs();

[[nodiscard]] const DatasetSpec& dataset_spec(DatasetId id);

/// Parse "cora" / "ampt" / "amcp" (also accepts full names).
[[nodiscard]] DatasetId dataset_from_name(const std::string& name);

/// Generate the synthetic twin. Same (id, seed, scale) always yields the
/// same graph.
[[nodiscard]] LabeledGraph make_dataset(DatasetId id, std::uint64_t seed = 1,
                                        double scale = 1.0);

}  // namespace seqge
