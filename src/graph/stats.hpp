#pragma once
// Summary statistics over graphs — used by bench_table1_datasets and by
// generator tests to validate that synthetic twins match their specs.

#include <cstddef>

#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace seqge {

struct GraphStats {
  std::size_t num_nodes = 0;
  std::size_t num_edges = 0;
  std::size_t min_degree = 0;
  std::size_t max_degree = 0;
  double mean_degree = 0.0;
  std::size_t num_components = 0;
  /// Fraction of edges whose endpoints share a label (only meaningful
  /// for labeled graphs; -1 otherwise).
  double label_homophily = -1.0;
};

[[nodiscard]] GraphStats compute_stats(const Graph& g);
[[nodiscard]] GraphStats compute_stats(const LabeledGraph& g);

}  // namespace seqge
