#include "graph/datasets.hpp"

#include <algorithm>
#include <stdexcept>

namespace seqge {

const std::vector<DatasetSpec>& dataset_specs() {
  static const std::vector<DatasetSpec> kSpecs = {
      {DatasetId::kCora, "cora", 2708, 5429, 7},
      {DatasetId::kAmazonPhoto, "ampt", 7650, 143663, 8},
      {DatasetId::kAmazonComputers, "amcp", 13752, 287209, 10},
  };
  return kSpecs;
}

const DatasetSpec& dataset_spec(DatasetId id) {
  for (const auto& s : dataset_specs()) {
    if (s.id == id) return s;
  }
  throw std::invalid_argument("dataset_spec: unknown id");
}

DatasetId dataset_from_name(const std::string& name) {
  std::string n = name;
  std::transform(n.begin(), n.end(), n.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (n == "cora") return DatasetId::kCora;
  if (n == "ampt" || n == "amazon-photo" || n == "photo") {
    return DatasetId::kAmazonPhoto;
  }
  if (n == "amcp" || n == "amazon-computers" || n == "computers") {
    return DatasetId::kAmazonComputers;
  }
  throw std::invalid_argument("dataset_from_name: unknown dataset " + name);
}

LabeledGraph make_dataset(DatasetId id, std::uint64_t seed, double scale) {
  const DatasetSpec& spec = dataset_spec(id);
  if (scale <= 0.0 || scale > 1.0) {
    throw std::invalid_argument("make_dataset: scale must be in (0, 1]");
  }

  SbmConfig cfg;
  cfg.num_nodes = std::max<std::size_t>(
      64, static_cast<std::size_t>(static_cast<double>(spec.num_nodes) * scale));
  cfg.target_edges = std::max(
      cfg.num_nodes,
      static_cast<std::size_t>(static_cast<double>(spec.num_edges) * scale));
  cfg.num_classes = spec.num_classes;
  cfg.seed = seed * 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(id);

  // Cora is a sparse citation network; the Amazon graphs are dense
  // co-purchase graphs. Assortativity is tuned per dataset so node2vec
  // embeddings land in the paper's F1 band (~0.8-0.95) instead of
  // saturating: the sparse graph needs strong communities to be
  // learnable at average degree ~4, while the dense graphs need weaker
  // ones or the task becomes trivially separable.
  cfg.assortativity = (id == DatasetId::kCora) ? 24.0 : 7.0;
  cfg.degree_exponent = 2.5;

  LabeledGraph g = generate_dcsbm(cfg);
  g.name = spec.name;
  return g;
}

}  // namespace seqge
