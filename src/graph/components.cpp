#include "graph/components.hpp"

#include <deque>

namespace seqge {

ComponentLabels connected_components(const Graph& g) {
  const std::size_t n = g.num_nodes();
  constexpr NodeId kUnset = static_cast<NodeId>(-1);
  ComponentLabels out;
  out.label.assign(n, kUnset);
  std::deque<NodeId> queue;
  for (NodeId s = 0; s < n; ++s) {
    if (out.label[s] != kUnset) continue;
    const auto comp = static_cast<NodeId>(out.count++);
    out.label[s] = comp;
    queue.push_back(s);
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop_front();
      for (NodeId v : g.neighbors(u)) {
        if (out.label[v] == kUnset) {
          out.label[v] = comp;
          queue.push_back(v);
        }
      }
    }
  }
  return out;
}

std::size_t count_components(const Graph& g) {
  return connected_components(g).count;
}

}  // namespace seqge
