#pragma once
// Immutable undirected weighted graph in CSR (compressed sparse row)
// form. Adjacency lists are sorted by neighbor id so edge membership
// queries (needed by the node2vec second-order bias alpha_pq) are
// O(log deg). Node ids are dense [0, n).

#include <cstdint>
#include <span>
#include <vector>

namespace seqge {

using NodeId = std::uint32_t;

struct Edge {
  NodeId src = 0;
  NodeId dst = 0;
  float weight = 1.0f;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  Graph() = default;

  /// Build from an edge list. When `undirected` (the default and the only
  /// mode the paper uses), each input edge is stored in both endpoint
  /// adjacency lists. Duplicate edges are merged (weights summed);
  /// self-loops are dropped.
  static Graph from_edges(std::size_t num_nodes, std::span<const Edge> edges,
                          bool undirected = true);

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  /// Number of undirected edges (each counted once).
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }

  [[nodiscard]] std::size_t degree(NodeId u) const noexcept {
    return offsets_[u + 1] - offsets_[u];
  }

  /// Sorted neighbor ids of u.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const noexcept {
    return {adjacency_.data() + offsets_[u], degree(u)};
  }
  /// Edge weights aligned with neighbors(u).
  [[nodiscard]] std::span<const float> weights(NodeId u) const noexcept {
    return {weights_.data() + offsets_[u], degree(u)};
  }

  /// O(log deg) membership test.
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;

  /// Weight of edge (u, v); 0 if absent.
  [[nodiscard]] float edge_weight(NodeId u, NodeId v) const noexcept;

  /// Sum of weights incident to u (used by first-order walk bias).
  [[nodiscard]] double weighted_degree(NodeId u) const noexcept;

  /// All undirected edges, each once with src < dst.
  [[nodiscard]] std::vector<Edge> edge_list() const;

  /// Total directed adjacency entries (2x undirected edge count).
  [[nodiscard]] std::size_t num_adjacency_entries() const noexcept {
    return adjacency_.size();
  }

 private:
  std::vector<std::size_t> offsets_;  // n+1 entries
  std::vector<NodeId> adjacency_;     // sorted per node
  std::vector<float> weights_;
  std::size_t num_edges_ = 0;
};

}  // namespace seqge
