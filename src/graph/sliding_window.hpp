#pragma once
// Sliding-window temporal graph: a DynamicGraph whose edges carry
// insertion timestamps and expire once they fall outside a configurable
// horizon — the IoT-stream workload (ROADMAP "Scenario diversity"):
// device links come and go, and stale structure must decay out of both
// the walkable graph and, via the trainer's unlearning path, the
// embedding.
//
// Two horizons, both optional and composable:
//  * max_age    — an edge inserted at stamp t is evicted once
//                 expire(now) sees now - t > max_age;
//  * max_edges  — a capacity bound evicting oldest-first (FIFO) when
//                 the live edge count exceeds it.
//
// Every mutation is incremental: insertion and removal are O(deg) in
// the adjacency lists and O(1) amortized in the window ring and degree
// table; nothing is rebuilt per deletion. The one O(n) structure — the
// negative-sampling alias table over the degree distribution — is
// rebuilt lazily, amortized over `sampler_rebuild_interval` mutations
// (the same staleness trade train_sequential makes for insert-only
// streams).
//
// Edges are identified by a monotonically increasing token assigned at
// insertion. Tokens are what the StreamTrainer keys its recorded
// training batches by, so an eviction can find and unlearn exactly the
// walks the edge once trained.

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/dynamic_graph.hpp"
#include "sampling/negative_sampler.hpp"

namespace seqge {

/// One edge evicted from the window (by age, capacity, or explicit
/// remove_edge) — everything a consumer needs to unlearn it.
struct ExpiredEdge {
  NodeId src = 0;
  NodeId dst = 0;
  float weight = 1.0f;
  std::uint64_t stamp = 0;  ///< caller-clock insertion time
  std::uint64_t token = 0;  ///< handle assigned by add_edge
};

class SlidingWindowGraph {
 public:
  struct Options {
    /// Evict edges older than this (caller-clock units) on expire();
    /// 0 = no age horizon.
    std::uint64_t max_age = 0;
    /// Keep at most this many live edges, evicting oldest-first;
    /// 0 = unbounded.
    std::size_t max_edges = 0;
    /// Rebuild the O(n) alias table after this many mutations (the
    /// degree table itself is always exact). refresh_sampler() forces
    /// an immediate rebuild.
    std::size_t sampler_rebuild_interval = 256;
  };

  static constexpr std::uint64_t kInvalidToken = ~std::uint64_t{0};

  // Two overloads instead of a defaulted Options argument: a default
  // argument may not use a nested class's member initializers inside
  // the enclosing class definition, but a delegating-constructor body
  // (complete-class context) may.
  explicit SlidingWindowGraph(std::size_t num_nodes)
      : SlidingWindowGraph(num_nodes, Options()) {}
  SlidingWindowGraph(std::size_t num_nodes, Options opts);

  // --- GraphT concept (walk/node2vec_walker.hpp) ---------------------------
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return dyn_.num_nodes();
  }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return dyn_.num_edges();
  }
  [[nodiscard]] std::size_t degree(NodeId u) const noexcept {
    return dyn_.degree(u);
  }
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const noexcept {
    return dyn_.neighbors(u);
  }
  [[nodiscard]] std::span<const float> weights(NodeId u) const noexcept {
    return dyn_.weights(u);
  }
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept {
    return dyn_.has_edge(u, v);
  }
  [[nodiscard]] float edge_weight(NodeId u, NodeId v) const noexcept {
    return dyn_.edge_weight(u, v);
  }
  [[nodiscard]] double weighted_degree(NodeId u) const noexcept {
    return dyn_.weighted_degree(u);
  }

  // --- mutations -----------------------------------------------------------
  /// Insert (u, v) at `stamp`. Returns the edge's token, or
  /// kInvalidToken when the edge already exists, u == v, or either
  /// endpoint is out of range. Stamps must be non-decreasing across
  /// calls (the window ring is FIFO by insertion order).
  std::uint64_t add_edge(NodeId u, NodeId v, float weight,
                         std::uint64_t stamp);

  /// Explicitly remove a live edge now, independent of the horizon.
  /// Returns its eviction record, or nullopt when absent.
  std::optional<ExpiredEdge> remove_edge(NodeId u, NodeId v);

  /// Evict every edge outside the horizon as of `now` (age first, then
  /// the capacity bound), appending eviction records oldest-first to
  /// `out`. Returns the number evicted.
  std::size_t expire(std::uint64_t now, std::vector<ExpiredEdge>& out);

  // --- sampling ------------------------------------------------------------
  /// Exact per-node degree counts, maintained incrementally — the
  /// frequency surrogate the unigram^0.75 negative distribution is
  /// built from (walk-frequency counting is meaningless once walks can
  /// refer to departed structure).
  [[nodiscard]] const std::vector<std::uint64_t>& degree_counts()
      const noexcept {
    return counts_;
  }
  /// Alias sampler over degree_counts(), rebuilt lazily once
  /// sampler_rebuild_interval mutations have accumulated.
  const NegativeSampler& sampler();
  /// Force an immediate rebuild (checkpoints, tests).
  const NegativeSampler& refresh_sampler();
  [[nodiscard]] std::size_t sampler_rebuilds() const noexcept {
    return sampler_rebuilds_;
  }

  // --- views ---------------------------------------------------------------
  [[nodiscard]] const DynamicGraph& graph() const noexcept { return dyn_; }
  [[nodiscard]] Graph to_graph() const { return dyn_.to_graph(); }

 private:
  struct Entry {
    NodeId u, v;
    float weight;
    std::uint64_t stamp;
    bool alive;
  };

  static std::uint64_t edge_key(NodeId u, NodeId v) noexcept {
    const NodeId lo = u < v ? u : v;
    const NodeId hi = u < v ? v : u;
    return (std::uint64_t{lo} << 32) | hi;
  }
  void evict(Entry& e, std::uint64_t token, std::vector<ExpiredEdge>& out);
  void note_mutation() noexcept;

  Options opts_;
  DynamicGraph dyn_;
  // FIFO ring of every inserted edge, dead entries included until they
  // reach the front; entry for token t lives at ring_[t - base_token_].
  std::deque<Entry> ring_;
  std::uint64_t base_token_ = 0;  ///< token of ring_.front()
  std::unordered_map<std::uint64_t, std::uint64_t> token_of_;  // key -> token
  std::vector<std::uint64_t> counts_;  ///< per-node degree
  std::optional<NegativeSampler> sampler_;
  std::size_t mutations_since_rebuild_ = 0;
  std::size_t sampler_rebuilds_ = 0;
};

}  // namespace seqge
