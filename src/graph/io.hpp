#pragma once
// Text edge-list I/O for labeled graphs, so generated datasets can be
// persisted and experiments rerun against identical inputs. Format:
//
//   # seqge-graph v1
//   <num_nodes> <num_edges> <num_classes>
//   L <node> <label>          (one per node, optional block)
//   E <src> <dst> <weight>    (one per undirected edge)

#include <iosfwd>
#include <string>

#include "graph/generators.hpp"

namespace seqge {

void save_labeled_graph(std::ostream& os, const LabeledGraph& g);
void save_labeled_graph(const std::string& path, const LabeledGraph& g);

[[nodiscard]] LabeledGraph load_labeled_graph(std::istream& is);
[[nodiscard]] LabeledGraph load_labeled_graph(const std::string& path);

}  // namespace seqge
