#pragma once
// Union-find and connected-component labeling. Used by the spanning
// forest builder ("seq" scenario requires the initial forest to have the
// same number of connected components as the full graph) and by graph
// generators to report connectivity stats.

#include <cstdint>
#include <numeric>
#include <vector>

#include "graph/graph.hpp"

namespace seqge {

/// Union-find with path halving + union by size.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), NodeId{0});
  }

  NodeId find(NodeId x) noexcept {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Returns true if x and y were in different sets (i.e. a merge
  /// happened).
  bool unite(NodeId x, NodeId y) noexcept {
    NodeId rx = find(x);
    NodeId ry = find(y);
    if (rx == ry) return false;
    if (size_[rx] < size_[ry]) std::swap(rx, ry);
    parent_[ry] = rx;
    size_[rx] += size_[ry];
    --num_sets_adjust_;
    return true;
  }

  [[nodiscard]] bool connected(NodeId x, NodeId y) noexcept {
    return find(x) == find(y);
  }

  [[nodiscard]] std::size_t num_sets() noexcept {
    return parent_.size() + num_sets_adjust_;
  }

 private:
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> size_;
  std::ptrdiff_t num_sets_adjust_ = 0;
};

struct ComponentLabels {
  std::vector<NodeId> label;  // per-node component id in [0, count)
  std::size_t count = 0;
};

/// Label connected components of an undirected graph (BFS).
[[nodiscard]] ComponentLabels connected_components(const Graph& g);

/// Number of connected components.
[[nodiscard]] std::size_t count_components(const Graph& g);

}  // namespace seqge
