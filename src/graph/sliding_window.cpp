#include "graph/sliding_window.hpp"

namespace seqge {

SlidingWindowGraph::SlidingWindowGraph(std::size_t num_nodes, Options opts)
    : opts_(opts), dyn_(num_nodes), counts_(num_nodes, 0) {
  if (opts_.sampler_rebuild_interval == 0) {
    opts_.sampler_rebuild_interval = 1;
  }
}

void SlidingWindowGraph::note_mutation() noexcept {
  ++mutations_since_rebuild_;
}

std::uint64_t SlidingWindowGraph::add_edge(NodeId u, NodeId v, float weight,
                                           std::uint64_t stamp) {
  if (!dyn_.add_edge(u, v, weight)) return kInvalidToken;
  const std::uint64_t token = base_token_ + ring_.size();
  ring_.push_back({u, v, weight, stamp, true});
  token_of_.emplace(edge_key(u, v), token);
  ++counts_[u];
  ++counts_[v];
  note_mutation();
  return token;
}

void SlidingWindowGraph::evict(Entry& e, std::uint64_t token,
                               std::vector<ExpiredEdge>& out) {
  dyn_.remove_edge(e.u, e.v);
  --counts_[e.u];
  --counts_[e.v];
  token_of_.erase(edge_key(e.u, e.v));
  e.alive = false;
  out.push_back({e.u, e.v, e.weight, e.stamp, token});
  note_mutation();
}

std::optional<ExpiredEdge> SlidingWindowGraph::remove_edge(NodeId u,
                                                           NodeId v) {
  const auto it = token_of_.find(edge_key(u, v));
  if (it == token_of_.end()) return std::nullopt;
  const std::uint64_t token = it->second;
  Entry& e = ring_[static_cast<std::size_t>(token - base_token_)];
  std::vector<ExpiredEdge> one;
  evict(e, token, one);
  // Dead entries stay in the ring (tombstones of the FIFO) until they
  // reach the front; expire() pops them for free.
  return one.front();
}

std::size_t SlidingWindowGraph::expire(std::uint64_t now,
                                       std::vector<ExpiredEdge>& out) {
  const std::size_t before = out.size();
  auto pop_dead_front = [&] {
    while (!ring_.empty() && !ring_.front().alive) {
      ring_.pop_front();
      ++base_token_;
    }
  };
  pop_dead_front();
  // Age horizon: the ring is FIFO by stamp, so expired edges are a
  // prefix.
  if (opts_.max_age != 0 && now > opts_.max_age) {
    const std::uint64_t cutoff = now - opts_.max_age;
    while (!ring_.empty() && ring_.front().stamp < cutoff) {
      evict(ring_.front(), base_token_, out);
      pop_dead_front();
    }
  }
  // Capacity horizon: evict oldest-first until within bound.
  if (opts_.max_edges != 0) {
    while (dyn_.num_edges() > opts_.max_edges && !ring_.empty()) {
      evict(ring_.front(), base_token_, out);
      pop_dead_front();
    }
  }
  return out.size() - before;
}

const NegativeSampler& SlidingWindowGraph::sampler() {
  if (!sampler_.has_value() ||
      mutations_since_rebuild_ >= opts_.sampler_rebuild_interval) {
    return refresh_sampler();
  }
  return *sampler_;
}

const NegativeSampler& SlidingWindowGraph::refresh_sampler() {
  sampler_.emplace(counts_);
  mutations_since_rebuild_ = 0;
  ++sampler_rebuilds_;
  return *sampler_;
}

}  // namespace seqge
