#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace seqge {

void save_labeled_graph(std::ostream& os, const LabeledGraph& g) {
  os << "# seqge-graph v1 " << g.name << "\n";
  os << g.graph.num_nodes() << ' ' << g.graph.num_edges() << ' '
     << g.num_classes << "\n";
  for (std::size_t i = 0; i < g.labels.size(); ++i) {
    os << "L " << i << ' ' << g.labels[i] << "\n";
  }
  for (const Edge& e : g.graph.edge_list()) {
    os << "E " << e.src << ' ' << e.dst << ' ' << e.weight << "\n";
  }
}

void save_labeled_graph(const std::string& path, const LabeledGraph& g) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_labeled_graph: cannot open " + path);
  save_labeled_graph(os, g);
}

LabeledGraph load_labeled_graph(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line.rfind("# seqge-graph v1", 0) != 0) {
    throw std::runtime_error("load_labeled_graph: bad header");
  }
  LabeledGraph out;
  {
    std::istringstream hs(line);
    std::string hash, tag, ver;
    hs >> hash >> tag >> ver >> out.name;
  }

  std::size_t n = 0, m = 0, k = 0;
  if (!(is >> n >> m >> k)) {
    throw std::runtime_error("load_labeled_graph: bad size line");
  }
  out.num_classes = k;
  out.labels.assign(n, 0);

  std::vector<Edge> edges;
  edges.reserve(m);
  char kind;
  while (is >> kind) {
    if (kind == 'L') {
      std::size_t node;
      std::uint32_t label;
      if (!(is >> node >> label) || node >= n) {
        throw std::runtime_error("load_labeled_graph: bad label line");
      }
      out.labels[node] = label;
    } else if (kind == 'E') {
      Edge e;
      if (!(is >> e.src >> e.dst >> e.weight)) {
        throw std::runtime_error("load_labeled_graph: bad edge line");
      }
      edges.push_back(e);
    } else {
      throw std::runtime_error("load_labeled_graph: unknown record");
    }
  }
  if (edges.size() != m) {
    throw std::runtime_error("load_labeled_graph: edge count mismatch");
  }
  out.graph = Graph::from_edges(n, edges);
  return out;
}

LabeledGraph load_labeled_graph(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_labeled_graph: cannot open " + path);
  return load_labeled_graph(is);
}

}  // namespace seqge
