#pragma once
// Synthetic graph generators. The paper evaluates on Cora and two Amazon
// co-purchase subsets (Table 1); those datasets are not redistributable
// here, so we generate degree-corrected stochastic block model (DC-SBM)
// twins with matched node/edge/class counts. Classes correspond to
// assortative blocks, so random-walk proximity recovers them — the same
// property the downstream one-vs-rest logistic regression measures on
// the real datasets. See DESIGN.md §2 for the substitution argument.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace seqge {

/// A graph plus per-node class labels for downstream classification.
struct LabeledGraph {
  Graph graph;
  std::vector<std::uint32_t> labels;
  std::size_t num_classes = 0;
  std::string name;
};

struct SbmConfig {
  std::size_t num_nodes = 1000;
  std::size_t target_edges = 5000;
  std::size_t num_classes = 5;
  /// Ratio of within-block to between-block edge propensity. Higher =
  /// cleaner communities = easier classification.
  double assortativity = 12.0;
  /// Pareto tail exponent for per-node degree propensities (the
  /// "degree-corrected" part; real citation/co-purchase graphs are
  /// heavy-tailed).
  double degree_exponent = 2.5;
  /// Cap on propensity relative to the block mean, to bound hub size.
  double max_propensity_ratio = 12.0;
  std::uint64_t seed = 1;
};

/// Generate a DC-SBM labeled graph. Guarantees: no self-loops, no
/// duplicate edges, every node has degree >= 1 (isolated nodes are
/// attached to a random same-block neighbor so walks and the downstream
/// classifier see every node).
[[nodiscard]] LabeledGraph generate_dcsbm(const SbmConfig& config);

/// Zachary's karate club (34 nodes, 78 edges, 2 factions) — the standard
/// tiny ground-truth-community graph, used by tests and the quickstart.
[[nodiscard]] LabeledGraph make_karate_club();

/// Deterministic ring lattice (each node connected to k/2 neighbors per
/// side) — useful for property tests with known structure.
[[nodiscard]] Graph make_ring(std::size_t num_nodes, std::size_t k = 2);

/// Erdos-Renyi G(n, m) (exactly m distinct edges) — null model for
/// ablations.
[[nodiscard]] Graph make_erdos_renyi(std::size_t num_nodes,
                                     std::size_t num_edges,
                                     std::uint64_t seed);

/// Barabasi-Albert preferential attachment: start from a
/// (edges_per_node + 1)-clique, then attach each new node to
/// `edges_per_node` distinct existing nodes with probability
/// proportional to degree. Scale-free degree distribution — the shape
/// of the paper's citation/co-purchase workloads — used by the pipeline
/// throughput bench.
[[nodiscard]] Graph make_barabasi_albert(std::size_t num_nodes,
                                         std::size_t edges_per_node,
                                         std::uint64_t seed);

}  // namespace seqge
