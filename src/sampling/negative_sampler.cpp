#include "sampling/negative_sampler.hpp"

#include <cmath>

namespace seqge {

NegativeSampler::NegativeSampler(std::span<const std::uint64_t> counts,
                                 double power) {
  std::vector<double> weights(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double c = counts[i] == 0 ? 1.0 : static_cast<double>(counts[i]);
    weights[i] = std::pow(c, power);
  }
  table_.build(weights);
}

void NegativeSampler::sample_batch(Rng& rng, std::size_t count,
                                   std::uint32_t exclude,
                                   std::vector<std::uint32_t>& out) const {
  out.clear();
  out.reserve(count);
  // Rejection of the excluded node terminates quickly: no node carries
  // probability mass ~1 unless the graph has a single node; the guard
  // bounds the loop in that degenerate case.
  std::size_t guard = 0;
  while (out.size() < count) {
    const std::uint32_t v = sample(rng);
    if (v != exclude || ++guard > 64) out.push_back(v);
  }
}

}  // namespace seqge
