#pragma once
// Negative sampling for skip-gram training (Mikolov et al., ref [16]).
// The sampling distribution is the per-node appearance count in the walk
// corpus raised to the 3/4 power, drawn in O(1) through an alias table.
// A shared negative batch is pre-drawn once per random walk and reused
// for every context of that walk — the paper's DRAM<->BRAM traffic
// reduction trick (Sec. 3.2, following Ji et al. [18]).

#include <cstdint>
#include <span>
#include <vector>

#include "sampling/alias_table.hpp"
#include "util/rng.hpp"

namespace seqge {

class NegativeSampler {
 public:
  /// Build from per-node frequency counts (e.g. appearances in the walk
  /// corpus). `power` is the smoothing exponent (0.75 in word2vec and
  /// here). Nodes with zero count get a floor of 1 so every node stays
  /// reachable as a negative.
  explicit NegativeSampler(std::span<const std::uint64_t> counts,
                           double power = 0.75);

  /// Convenience: frequency = degree (useful before any walks exist,
  /// e.g. at the start of the "seq" scenario). GraphT needs num_nodes()
  /// and degree(u).
  template <typename GraphT>
  static NegativeSampler from_degrees(const GraphT& g, double power = 0.75) {
    std::vector<std::uint64_t> counts(g.num_nodes());
    for (std::uint32_t u = 0; u < g.num_nodes(); ++u) {
      counts[u] = g.degree(u);
    }
    return NegativeSampler(counts, power);
  }

  [[nodiscard]] std::uint32_t sample(Rng& rng) const noexcept {
    return table_.sample(rng);
  }

  /// Draw `count` negatives, rejecting `exclude` (the positive node).
  void sample_batch(Rng& rng, std::size_t count, std::uint32_t exclude,
                    std::vector<std::uint32_t>& out) const;

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return table_.size();
  }

 private:
  AliasTable table_;
};

}  // namespace seqge
