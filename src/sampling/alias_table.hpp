#pragma once
// Walker's alias method (Walker 1977, ref [17] of the paper): O(n) build,
// O(1) sampling from an arbitrary discrete distribution. Used for
//   * negative sampling over walk-frequency counts (Sec. 3.1),
//   * degree-propensity endpoint sampling in the DC-SBM generator,
//   * the per-edge transition tables of the alias-based node2vec walker.

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace seqge {

class AliasTable {
 public:
  AliasTable() = default;

  /// Build from non-negative weights. Zero-weight entries are never
  /// sampled. Throws std::invalid_argument if all weights are zero or
  /// any weight is negative/non-finite.
  explicit AliasTable(std::span<const double> weights) { build(weights); }

  void build(std::span<const double> weights);

  /// Draw an index in [0, size()) with probability proportional to its
  /// weight.
  [[nodiscard]] std::uint32_t sample(Rng& rng) const noexcept {
    const std::uint32_t slot =
        static_cast<std::uint32_t>(rng.bounded(prob_.size()));
    return rng.uniform() < prob_[slot] ? slot : alias_[slot];
  }

  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }
  [[nodiscard]] bool empty() const noexcept { return prob_.empty(); }

  /// Exact sampling probability of index i (for tests / goodness-of-fit).
  [[nodiscard]] double probability_of(std::uint32_t i) const noexcept;

 private:
  std::vector<double> prob_;          // acceptance threshold per slot
  std::vector<std::uint32_t> alias_;  // fallback index per slot
};

}  // namespace seqge
