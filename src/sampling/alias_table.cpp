#include "sampling/alias_table.hpp"

#include <cmath>
#include <stdexcept>

namespace seqge {

void AliasTable::build(std::span<const double> weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("AliasTable: empty weights");

  double total = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument("AliasTable: weights must be finite >= 0");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("AliasTable: all weights are zero");
  }

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled probabilities; "small" slots (< 1) are topped up by "large"
  // ones. Classic two-stack construction.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Remaining slots are exactly 1 up to FP round-off.
  for (std::uint32_t s : small) prob_[s] = 1.0;
  for (std::uint32_t l : large) prob_[l] = 1.0;
}

double AliasTable::probability_of(std::uint32_t i) const noexcept {
  const double n = static_cast<double>(prob_.size());
  double p = prob_[i] / n;
  for (std::size_t s = 0; s < alias_.size(); ++s) {
    if (alias_[s] == i && prob_[s] < 1.0) p += (1.0 - prob_[s]) / n;
  }
  return p;
}

}  // namespace seqge
